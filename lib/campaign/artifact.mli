(** Versioned campaign result artifacts.

    An artifact records the full outcome of a campaign: the grid identity
    (name, scenario count, base seed, grid fingerprint), every scenario
    verdict in enumeration order, and a [run] section with wall-clock
    timing, the domain count and the scheduler/cache/recovery reports.

    Everything {e except} the [run] section is a pure function of the
    grid and the base seed — {!deterministic_string} renders exactly that
    part, and is byte-identical across domain counts, scheduling orders,
    work-stealing interleavings, cache states and journal/resume
    boundaries. The [run] section is where all timing and environment
    variance lives, by construction. *)

type cache_info = {
  hits : int;  (** scenarios answered from the result cache *)
  misses : int;  (** scenarios looked up but absent (then executed) *)
  stores : int;  (** verdicts persisted to the cache by this run *)
}
(** Result-cache tallies. Deliberately in the [run] section: they depend
    on what happened to be in the cache directory, not on the grid. Zero
    across the board when no cache is configured. *)

type steal_info = {
  steals : int;  (** tasks executed by a non-owner worker *)
  retried : int;  (** retry attempts across all scenarios *)
}

type recovery_info = {
  recovered_records : int;  (** journal records adopted on resume *)
  dropped_bytes : int;  (** torn/corrupt journal tail truncated away *)
  first_corrupt_record : int option;
      (** 1-based ordinal of the first corrupt journal record; [None]
          when the journal was wholly intact *)
}

type run_info = {
  domains : int;
  wall_s : float;
      (** wall-clock of the completing invocation (monotonic clock,
          clamped at [0.0] on parse) *)
  slowest : (int * float) list;
      (** the slowest scenarios of this invocation as
          [(index, wall_s)], slowest first — the straggler profile the
          work-stealing scheduler exists for (resumed/cached scenarios
          do not appear; their cost was not paid here) *)
  resumed_scenarios : int;  (** scenarios adopted from the journal *)
  cache : cache_info;
  steal : steal_info;
  recovery : recovery_info;
}

type quarantined = {
  index : int;  (** scenario index within the grid *)
  id : string;  (** {!Scenario.id} of the quarantined scenario *)
  message : string;
      (** exception message of the final (post-retry) failure, prefixed
          by earlier attempts' messages when they differed *)
}
(** A scenario whose execution failed at the infrastructure level
    (journal I/O, progress callback, …) through every retry and was
    quarantined by the self-healing runner. It appears in [verdicts] as
    a {!Scenario.Crashed} entry, so the verdict array stays complete. *)

type t = {
  campaign : string;
  count : int;
  base_seed : int;
  grid_fingerprint : string;
  verdicts : Scenario.verdict array;  (** sorted by scenario index *)
  stats : Stats.t;
      (** per-algorithm counter aggregates; part of the deterministic
          portion — byte-identical across domain counts *)
  quarantined : quarantined list;  (** sorted by scenario index *)
  run : run_info;
}

val version : int
(** Artifact format version; serialized as ["lbc-campaign/<version>"]. *)

val no_cache_info : cache_info
val no_steal_info : steal_info
val no_recovery_info : recovery_info
(** All-zero reports, for callers assembling artifacts outside the
    runner (tests, legacy conversion). *)

type summary = {
  total : int;
  checked : int;  (** verdicts whose execution completed and was judged *)
  ok : int;
  violations : int;  (** [checked - ok] *)
  agreement_failures : int;
  validity_failures : int;
  termination_failures : int;
  decision_mismatches : int;
      (** honest inputs unanimous but the decision differed *)
  crashed : int;  (** {!Scenario.Crashed} verdicts *)
  timeouts : int;  (** {!Scenario.Timed_out} verdicts *)
  quarantined : int;
  rounds_max : int;
  transmissions_total : int;
}
(** Property counters (agreement/validity/termination/decision) tally
    {e checked} verdicts only: a crashed or timed-out scenario is
    unjudged, not a property violation. *)

val summarize : t -> summary
val pp_summary : Format.formatter -> summary -> unit

type sim_entry = {
  family : string;
      (** algorithm and graph segments of the scenario id plus the
          [net=] segment when present, e.g. ["a1|cycle:7|net=wan"] *)
  scenarios : int;  (** checked verdicts in the family *)
  p50_ns : int;  (** median simulated wall-time, ns (nearest-rank) *)
  p99_ns : int;
  max_ns : int;
}

val sim_stats : t -> sim_entry list
(** Per-family simulated-time percentiles over checked verdicts, sorted
    by family name. Families whose simulated time is identically zero
    (no network profile, or the ideal one) are omitted — a latency-free
    campaign has [sim_stats = []] and serializes a [sim] section of
    [[]], keeping its deterministic bytes independent of the network
    layer. Derived from [verdicts]; serialized in the deterministic
    portion as the [sim] section. *)

val to_string : t -> string
(** Full JSON rendering, including the [run] section. *)

val deterministic_string : t -> string
(** JSON rendering of everything except the [run] section — the
    byte-comparable portion. Two campaign runs over the same grid and
    base seed produce identical [deterministic_string]s regardless of
    domain count or interruption. *)

val of_string : string -> (t, string) result
(** Parse either rendering (a missing [run] section parses with zeroed
    run info). Rejects artifacts with a different format version. *)

val save : path:string -> t -> unit
val load : path:string -> (t, string) result
