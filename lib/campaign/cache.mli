(** Content-addressed scenario→verdict result cache.

    A scenario's {!Scenario.id} is a pure function of its content, and an
    execution's verdict and counters are a pure function of
    (id, base seed, round budget) — the determinism contract the test
    suite and lbclint enforce. The cache exploits that: each key maps to
    one JSON file (named by the key's FNV-1a hash, with the key embedded
    and re-verified so collisions degrade to misses), letting overlapping
    grids and re-runs skip already-executed scenarios.

    Lookups and stores are safe from concurrent worker domains and even
    concurrent campaigns sharing a directory: writes are temp-file +
    rename, and racing writers produce identical bytes for a given key.

    Cache hit/miss tallies are surfaced in the artifact's [run] section —
    deliberately {e not} in the deterministic stats section, since they
    depend on what happened to be in the directory. *)

type entry = {
  algo : string;  (** {!Scenario.algo_name}, keys the stats section *)
  counters : (string * int) list;  (** sorted observability counters *)
  verdict : Scenario.verdict;
      (** [verdict.index] is positional: the caller must remap it to the
          current grid's index on a hit *)
}

type t

val create : dir:string -> t
(** Open (creating if needed) a cache directory. *)

val key : id:string -> base_seed:int -> budget:int -> string
(** The cache key for a scenario execution: id, campaign base seed and
    round budget ([0] when unbounded) — everything the verdict depends
    on. *)

val find : t -> key:string -> entry option
(** Look up a key, counting a hit or a miss. Unparseable, wrong-format or
    hash-colliding files are misses. *)

val store : t -> key:string -> entry -> unit
(** Persist an entry (atomically, via rename). IO errors are swallowed —
    the cache is an accelerator, never a correctness dependency. *)

val hits : t -> int
val misses : t -> int
val stores : t -> int
