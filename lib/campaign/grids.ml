module B = Lbc_graph.Builders
module G = Lbc_graph.Graph
module Nodeset = Lbc_graph.Nodeset
module Bit = Lbc_consensus.Bit
module S = Lbc_adversary.Strategy
module P = Lbc_sim.Perturb

let all_one g ~faulty:_ = [ Array.make (G.size g) Bit.One ]

let e1 ?(inputs = `All) ?(quick = false) () =
  let strategies = if quick then [ S.Flip_forwards; S.Lie ] else S.kinds_lbc in
  let inputs =
    match inputs with
    | `All -> fun g ~faulty -> Grid.all_inputs g ~faulty
    | `Unanimous -> Grid.unanimous_inputs
  in
  Grid.product ~name:"e1"
    ~graphs:[ ("fig1a", 1, B.fig1a) ]
    ~algos:[ Scenario.A1; Scenario.A2 ]
    ~placements:Grid.singleton_placements ~strategies ~inputs ()

let e2 ?(quick = false) () =
  let representative =
    Grid.product ~name:"e2-representative"
      ~graphs:[ ("fig1b", 2, B.fig1b) ]
      ~algos:[ Scenario.A1; Scenario.A2 ]
      ~placements:(fun _ ~f:_ ->
        List.map Nodeset.of_list
          (if quick then [ [ 0; 1 ] ] else [ [ 0; 1 ]; [ 0; 4 ]; [ 2; 6 ] ]))
      ~strategies:[ S.Flip_forwards; S.Lie ]
      ~inputs:Grid.unanimous_inputs ()
  in
  if quick then { representative with Grid.name = "e2" }
  else
    let exhaustive =
      Grid.product ~name:"e2-exhaustive"
        ~graphs:[ ("fig1b", 2, B.fig1b) ]
        ~algos:[ Scenario.A2 ]
        ~placements:(Grid.placements_of_size 2)
        ~strategies:
          [
            S.Flip_forwards; S.Silent; S.Omit_from (Nodeset.of_list [ 2; 3 ]);
            S.Noise 2;
          ]
        ~inputs:Grid.unanimous_inputs ()
    in
    Grid.append ~name:"e2" [ representative; exhaustive ]

let default_e5_sizes = [ 5; 7; 9; 11; 13; 15; 17 ]

let e5 ?(sizes = default_e5_sizes) () =
  Grid.product ~name:"e5"
    ~graphs:
      (List.map
         (fun n -> (Printf.sprintf "cycle:%d" n, 1, fun () -> B.cycle n))
         sizes)
    ~algos:[ Scenario.A2 ]
    ~placements:(fun g ~f:_ -> [ Nodeset.singleton (G.size g / 2) ])
    ~strategies:[ S.Flip_forwards ]
    ~inputs:(fun g ~faulty:_ ->
      let n = G.size g in
      let v = Array.make n Bit.One in
      v.(n / 2) <- Bit.Zero;
      [ v ])
    ()

let e8 ?(quick = false) () =
  let fig1 =
    Grid.product ~name:"e8-fig1"
      ~graphs:
        (("fig1a", 1, B.fig1a)
        :: (if quick then [] else [ ("fig1b", 2, B.fig1b) ]))
      ~algos:[ Scenario.A1; Scenario.A2 ]
      ~placements:(fun g ~f ->
        [ (if G.size g = 5 then Nodeset.singleton 2
           else Nodeset.of_list (if f = 2 then [ 0; 4 ] else [ 2 ])) ])
      ~strategies:[ S.Flip_forwards ]
      ~inputs:all_one ()
  in
  if quick then { fig1 with Grid.name = "e8" }
  else
    let baselines =
      Grid.append ~name:"e8-baselines"
        [
          Grid.product ~name:"relay"
            ~graphs:[ ("wheel:7", 1, fun () -> B.wheel 7) ]
            ~algos:[ Scenario.Relay ]
            ~placements:(fun _ ~f:_ -> [ Nodeset.singleton 3 ])
            ~strategies:[ S.Equivocate ] ~inputs:all_one ();
          Grid.product ~name:"eig"
            ~graphs:[ ("complete:7", 2, fun () -> B.complete 7) ]
            ~algos:[ Scenario.Eig ]
            ~placements:(fun _ ~f:_ -> [ Nodeset.of_list [ 1; 4 ] ])
            ~strategies:[ S.Lie ] ~inputs:all_one ();
        ]
    in
    Grid.append ~name:"e8" [ fig1; baselines ]

let smoke () = { (e1 ~inputs:`Unanimous ()) with Grid.name = "smoke" }

(* Regression for the former 62-node packing ceiling: a single Algorithm 2
   run on a 100-node cycle (ids up to 99 span two bitset words). One
   scenario only — A2 on cycle:n is O(n^2) messages, so this stays a
   smoke, not a sweep. *)
let n100 () =
  let n = 100 in
  Grid.product ~name:"n100"
    ~graphs:[ (Printf.sprintf "cycle:%d" n, 1, fun () -> B.cycle n) ]
    ~algos:[ Scenario.A2 ]
    ~placements:(fun _ ~f:_ -> [ Nodeset.singleton (n / 2) ])
    ~strategies:[ S.Flip_forwards ]
    ~inputs:all_one ()

(* Degradation study (bench E-series): sweep perturbation intensity for
   A1 and A2 on a 7-cycle, honest-behaving and tampering fault, flipped
   unanimous inputs. [None] first keeps an unperturbed baseline point in
   every cell. *)
let degradation_points =
  [
    { P.zero with P.drop = 0.02 };
    { P.zero with P.drop = 0.05 };
    { P.zero with P.drop = 0.1 };
    { P.zero with P.dup = 0.1 };
    { P.zero with P.delay = 2; P.delay_p = 0.25 };
    { P.zero with P.crash = 0.02; P.crash_len = 2 };
  ]

let edeg () =
  Grid.product ~name:"edeg"
    ~chaos:(None :: Grid.chaos_points degradation_points)
    ~graphs:[ ("cycle:7", 1, fun () -> B.cycle 7) ]
    ~algos:[ Scenario.A1; Scenario.A2 ]
    ~placements:(fun _ ~f:_ -> [ Nodeset.singleton 3 ])
    ~strategies:[ S.Honest_behavior; S.Flip_forwards ]
    ~inputs:Grid.unanimous_inputs ()

(* Containment smoke: a few perturbed consensus runs, one scenario whose
   execution raises (Equivocate under the pure local broadcast model hits
   [Engine.Model_violation]), and one long A1 run (110 rounds on the
   Petersen graph) that times out under a modest [--max-rounds] budget.
   Exercises the Crashed / Timed_out verdict paths end to end. *)
let chaos_smoke () =
  let drop = { P.zero with P.drop = 0.1 } in
  let perturbed =
    Grid.product ~name:"chaos-drop"
      ~chaos:[ Some drop ]
      ~graphs:[ ("cycle:5", 1, fun () -> B.cycle 5) ]
      ~algos:[ Scenario.A1; Scenario.A2 ]
      ~placements:(fun _ ~f:_ -> [ Nodeset.singleton 2 ])
      ~strategies:[ S.Flip_forwards ]
      ~inputs:Grid.unanimous_inputs ()
  in
  let crashing =
    Grid.product ~name:"chaos-crashing"
      ~graphs:[ ("cycle:5", 1, fun () -> B.cycle 5) ]
      ~algos:[ Scenario.A1 ]
      ~placements:(fun _ ~f:_ -> [ Nodeset.singleton 2 ])
      ~strategies:[ S.Equivocate ] ~inputs:all_one ()
  in
  let slow =
    Grid.product ~name:"chaos-slow"
      ~graphs:[ ("petersen", 1, B.petersen) ]
      ~algos:[ Scenario.A1 ]
      ~placements:(fun _ ~f:_ -> [ Nodeset.singleton 3 ])
      ~strategies:[ S.Flip_forwards ] ~inputs:all_one ()
  in
  Grid.append ~name:"chaos-smoke" [ perturbed; crashing; slow ]

(* E15 — latency degradation study: A1 and A2 on a 7-cycle across the
   named network profiles × packet-drop chaos, flipped-unanimous inputs.
   [None] first on both axes keeps a latency-free, unperturbed baseline
   point in every cell, so the table reads as "rounds stay put, simulated
   tail latency moves". *)
let e15 ?(quick = false) () =
  let module N = Lbc_net.Net in
  let profiles =
    if quick then [ N.wan ] else [ N.lan; N.wan; N.satellite; N.heavy_tail ]
  in
  let chaos =
    if quick then [ None; Some { P.zero with P.drop = 0.01 } ]
    else
      [
        None;
        Some { P.zero with P.drop = 0.01 };
        Some { P.zero with P.drop = 0.05 };
      ]
  in
  Grid.product ~name:"e15"
    ~net:(None :: Grid.net_points profiles)
    ~chaos
    ~graphs:[ ("cycle:7", 1, fun () -> B.cycle 7) ]
    ~algos:[ Scenario.A1; Scenario.A2 ]
    ~placements:(fun _ ~f:_ -> [ Nodeset.singleton 3 ])
    ~strategies:[ S.Flip_forwards ]
    ~inputs:Grid.unanimous_inputs ()

let names =
  [
    "e1"; "e1-unanimous"; "e2"; "e5"; "e8"; "edeg"; "e15"; "chaos-smoke";
    "smoke"; "n100";
  ]

let by_name ?(quick = false) = function
  | "e1" -> Some (e1 ~quick ())
  | "e1-unanimous" -> Some (e1 ~inputs:`Unanimous ~quick ())
  | "e2" -> Some (e2 ~quick ())
  | "e5" -> Some (e5 ?sizes:(if quick then Some [ 5; 9; 13 ] else None) ())
  | "e8" -> Some (e8 ~quick ())
  | "edeg" -> Some (edeg ())
  | "e15" -> Some (e15 ~quick ())
  | "chaos-smoke" -> Some (chaos_smoke ())
  | "smoke" -> Some (smoke ())
  | "n100" -> Some (n100 ())
  | _ -> None
