type header = {
  campaign : string;
  count : int;
  shard_size : int;
  base_seed : int;
  fingerprint : string;
}

type entry = {
  shard : int;
  wall_s : float;
  verdicts : Scenario.verdict array;
}

let header_json h =
  Jsonio.Obj
    [
      ("format", Jsonio.Str "lbc-campaign-progress/1");
      ("campaign", Jsonio.Str h.campaign);
      ("count", Jsonio.Int h.count);
      ("shard_size", Jsonio.Int h.shard_size);
      ("base_seed", Jsonio.Int h.base_seed);
      ("fingerprint", Jsonio.Str h.fingerprint);
    ]

let header_matches h j =
  let str k = Option.bind (Jsonio.member k j) Jsonio.to_str in
  let int k = Option.bind (Jsonio.member k j) Jsonio.to_int in
  str "format" = Some "lbc-campaign-progress/1"
  && str "campaign" = Some h.campaign
  && int "count" = Some h.count
  && int "shard_size" = Some h.shard_size
  && int "base_seed" = Some h.base_seed
  && str "fingerprint" = Some h.fingerprint

let entry_json e =
  Jsonio.Obj
    [
      ("shard", Jsonio.Int e.shard);
      ("wall_s", Jsonio.Float e.wall_s);
      ( "verdicts",
        Jsonio.List
          (Array.to_list (Array.map Scenario.verdict_to_json e.verdicts)) );
    ]

let entry_of_json j =
  match
    ( Option.bind (Jsonio.member "shard" j) Jsonio.to_int,
      Option.bind (Jsonio.member "wall_s" j) Jsonio.to_float,
      Option.bind (Jsonio.member "verdicts" j) Jsonio.to_list )
  with
  | Some shard, Some wall_s, Some vjs ->
      let rec convert acc = function
        | [] -> Some (List.rev acc)
        | vj :: rest -> (
            match Scenario.verdict_of_json vj with
            | Ok v -> convert (v :: acc) rest
            | Error _ -> None)
      in
      Option.map
        (fun vs -> { shard; wall_s; verdicts = Array.of_list vs })
        (convert [] vjs)
  | _ -> None

let load ~path ~header =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error _ -> []
  | [] -> []
  | first :: rest -> (
      match Jsonio.of_string first with
      | Ok hj when header_matches header hj ->
          List.filter_map
            (fun line ->
              if String.trim line = "" then None
              else
                match Jsonio.of_string line with
                | Ok j -> entry_of_json j
                | Error _ -> None)
            rest
      | _ -> [])

let start ~path ~header =
  let oc = open_out path in
  output_string oc (Jsonio.to_string (header_json header));
  output_char oc '\n';
  close_out oc

let append ~path entry =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (Jsonio.to_string (entry_json entry));
  output_char oc '\n';
  close_out oc

let remove ~path = try Sys.remove path with Sys_error _ -> ()
