type header = {
  campaign : string;
  count : int;
  shard_size : int;
  base_seed : int;
  fingerprint : string;
}

type entry = {
  shard : int;
  wall_s : float;
  verdicts : Scenario.verdict array;
  stats : Stats.t;
}

(* /3: verdicts carry a status (checked / timeout / crashed). Version
   mismatch is handled by the header check — a /1 or /2 progress file is
   discarded as stale, never mixed. *)
let format_tag = "lbc-campaign-progress/3"

let header_json h =
  Jsonio.Obj
    [
      ("format", Jsonio.Str format_tag);
      ("campaign", Jsonio.Str h.campaign);
      ("count", Jsonio.Int h.count);
      ("shard_size", Jsonio.Int h.shard_size);
      ("base_seed", Jsonio.Int h.base_seed);
      ("fingerprint", Jsonio.Str h.fingerprint);
    ]

let header_matches h j =
  let str k = Option.bind (Jsonio.member k j) Jsonio.to_str in
  let int k = Option.bind (Jsonio.member k j) Jsonio.to_int in
  str "format" = Some format_tag
  && str "campaign" = Some h.campaign
  && int "count" = Some h.count
  && int "shard_size" = Some h.shard_size
  && int "base_seed" = Some h.base_seed
  && str "fingerprint" = Some h.fingerprint

let entry_json e =
  Jsonio.Obj
    [
      ("shard", Jsonio.Int e.shard);
      ("wall_s", Jsonio.Float e.wall_s);
      ( "verdicts",
        Jsonio.List
          (Array.to_list (Array.map Scenario.verdict_to_json e.verdicts)) );
      ("stats", Stats.to_json e.stats);
    ]

let entry_of_json j =
  match
    ( Option.bind (Jsonio.member "shard" j) Jsonio.to_int,
      Option.bind (Jsonio.member "wall_s" j) Jsonio.to_float,
      Option.bind (Jsonio.member "verdicts" j) Jsonio.to_list )
  with
  | Some shard, Some wall_s, Some vjs ->
      let rec convert acc = function
        | [] -> Some (List.rev acc)
        | vj :: rest -> (
            match Scenario.verdict_of_json vj with
            | Ok v -> convert (v :: acc) rest
            | Error _ -> None)
      in
      let stats =
        match Option.map Stats.of_json (Jsonio.member "stats" j) with
        | Some (Ok s) -> Some s
        | Some (Error _) -> None
        | None -> Some Stats.empty
      in
      Option.bind stats (fun stats ->
          Option.map
            (fun vs ->
              (* A clock that stepped backwards mid-shard must not poison
                 aggregation: clamp on the way in. *)
              {
                shard;
                wall_s = Float.max 0.0 wall_s;
                verdicts = Array.of_list vs;
                stats;
              })
            (convert [] vjs))
  | _ -> None

type load_report = { dropped : int; first_corrupt_line : int option }

let clean_load = { dropped = 0; first_corrupt_line = None }

let load ~path ~header =
  match In_channel.with_open_text path In_channel.input_lines with
  | exception Sys_error _ -> ([], clean_load)
  | [] -> ([], clean_load)
  | first :: rest -> (
      match Jsonio.of_string first with
      | Ok hj when header_matches header hj ->
          let dropped = ref 0 in
          let first_corrupt = ref None in
          let entries =
            List.filter_map
              (fun (lineno, line) ->
                if String.trim line = "" then None
                else
                  match
                    Result.to_option (Jsonio.of_string line)
                    |> Fun.flip Option.bind entry_of_json
                  with
                  | Some e -> Some e
                  | None ->
                      incr dropped;
                      if !first_corrupt = None then
                        first_corrupt := Some lineno;
                      None)
              (* 1-based file line numbers, counting the header as line 1,
                 so the reported number is what an editor or sed shows. *)
              (List.mapi (fun i line -> (i + 2, line)) rest)
          in
          (entries, { dropped = !dropped; first_corrupt_line = !first_corrupt })
      | _ -> ([], clean_load))

let start ~path ~header =
  let oc = open_out path in
  output_string oc (Jsonio.to_string (header_json header));
  output_char oc '\n';
  close_out oc

let append ~path entry =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (Jsonio.to_string (entry_json entry));
  output_char oc '\n';
  close_out oc

let remove ~path = try Sys.remove path with Sys_error _ -> ()
