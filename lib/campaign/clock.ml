(* Monotonic: wall_s deltas must never go negative under NTP steps or
   DST; Unix.gettimeofday is not monotonic (and is banned by lint rule
   D1). Shared so every timed path — runner shards, CLI progress, future
   subsystems — reads the same clock. *)

let now_s () = Int64.to_float (Monotonic_clock.now ()) *. 1e-9
