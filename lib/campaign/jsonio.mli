(** Minimal JSON values, printing and parsing.

    The campaign artifacts are versioned JSON files; the repository policy
    is no new dependencies, so this is a small hand-rolled implementation
    covering exactly the JSON subset the artifacts use. Printing is
    deterministic (object keys appear in construction order, no
    whitespace variation), which is what makes artifact byte-comparison
    across domain counts meaningful. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, deterministic rendering. Strings are escaped per RFC 8259
    (quote, backslash, control characters). Floats print with 17
    significant digits and round-trip. *)

val of_string : string -> (t, string) result
(** Recursive-descent parser for the full value grammar (objects, arrays,
    strings with escapes incl. [\uXXXX], numbers, literals). Trailing
    garbage after the value is an error. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] otherwise. *)

val to_int : t -> int option
val to_float : t -> float option
(** [to_float] also accepts [Int]. *)

val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option
