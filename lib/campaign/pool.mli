(** A worker pool on OCaml 5 domains.

    Built on the stdlib only ([Domain], [Mutex], [Condition] — domainslib
    is deliberately not a dependency). Tasks are drawn from a shared
    queue under a mutex, so scheduling is dynamic (a slow shard does not
    stall the others), and campaign determinism is unaffected because
    results are keyed by task, not by completion order.

    With [domains <= 1] everything runs in the calling domain and no
    domain is spawned — the degenerate case is ordinary sequential
    execution, which is what makes "byte-identical at any domain count"
    testable against a serial baseline. *)

val run : domains:int -> tasks:'a array -> ('a -> unit) -> unit
(** Execute [f task] once for every element of [tasks], using the calling
    domain plus [domains - 1] spawned domains. Returns when all tasks are
    done. [f] must be domain-safe (the campaign runner's task bodies only
    touch per-task state and a mutex-protected sink).

    If any [f] raises, remaining queued tasks are abandoned, all domains
    are joined, and the first exception is re-raised. *)
