(** A worker pool on OCaml 5 domains.

    Built on the stdlib only ([Domain], [Mutex], [Condition] — domainslib
    is deliberately not a dependency). Tasks are drawn from a shared
    queue under a mutex, so scheduling is dynamic (a slow shard does not
    stall the others), and campaign determinism is unaffected because
    results are keyed by task, not by completion order.

    With [domains <= 1] no domain is spawned and the calling domain
    drains the queue itself — through {e the same} worker loop and
    exception-capture path as spawned workers, so 1-domain and N-domain
    campaigns fail identically (this used to be a bare [Array.iter] that
    leaked raw exceptions).

    Two failure disciplines are offered: {!run} aborts on the first task
    failure ({!Task_failed}, which names the task — a failure used to be
    re-raised bare, losing which task crashed); {!run_contained} retries
    each failing task once and quarantines persistent failures, always
    running every task to completion. *)

type failure = {
  index : int;  (** position of the failing task in [tasks] *)
  description : string;  (** from [describe]; [""] if none given *)
  message : string;  (** [Printexc.to_string] of the exception *)
  backtrace : string;  (** captured at the raise, in the worker *)
  attempts : int;  (** executions attempted (2 after a retry) *)
}

exception Task_failed of failure
(** Registered with a printer that includes the task index, description
    and original exception message, so even an uncaught failure
    identifies the task that crashed. *)

val run :
  ?describe:(int -> 'a -> string) ->
  domains:int ->
  tasks:'a array ->
  ('a -> unit) ->
  unit
(** Execute [f task] once for every element of [tasks], using the calling
    domain plus [domains - 1] spawned domains. Returns when all tasks are
    done. [f] must be domain-safe (the campaign runner's task bodies only
    touch per-task state and a mutex-protected sink).

    If any [f] raises, remaining queued tasks are abandoned, all domains
    are joined, and {!Task_failed} is raised carrying the first failure
    (task index, [describe]'s rendering, exception message, backtrace). *)

val run_contained :
  ?describe:(int -> 'a -> string) ->
  domains:int ->
  tasks:'a array ->
  ('a -> unit) ->
  failure list
(** Like {!run}, but self-healing: a task whose [f] raises (including
    [Stack_overflow]) is retried once on the same worker; a task that
    fails twice is {e quarantined} — recorded and skipped — and the pool
    keeps draining the queue. Every task is attempted; the pool never
    poisons. Returns the quarantined failures sorted by task index
    (deterministic: retry happens inline on the worker that saw the
    failure, so the failure set is independent of scheduling). *)
