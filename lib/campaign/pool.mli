(** A worker pool on OCaml 5 domains.

    Built on the stdlib only ([Domain], [Mutex], [Condition], [Atomic] —
    domainslib is deliberately not a dependency). Campaign determinism is
    unaffected by scheduling because results are keyed by task, not by
    completion order.

    With [domains <= 1] no worker domain is spawned and the calling
    domain drains the tasks itself — through {e the same} worker loop and
    exception-capture path as spawned workers, so 1-domain and N-domain
    campaigns fail identically.

    Three disciplines are offered: {!run} aborts on the first task
    failure ({!Task_failed}); {!run_contained} retries each failing task
    once and quarantines persistent failures; {!run_stealing} is the
    campaign scheduler — per-worker contiguous blocks with tail-stealing
    (a straggler task no longer idles the other workers behind a shared
    FIFO's arbitrary interleaving, and a contiguous [steal:false]
    baseline is measurable against it), capped-exponential-backoff
    retries with deterministic jitter, an optional per-task deadline
    watchdog, and a fatal-exception escape for crash injection. *)

type failure = {
  index : int;  (** position of the failing task in [tasks] *)
  description : string;  (** from [describe]; [""] if none given *)
  message : string;  (** [Printexc.to_string] of the final exception *)
  backtrace : string;  (** captured at the final raise, in the worker *)
  attempts : int;  (** executions attempted (retries + 1) *)
  prior_messages : string list;
      (** messages of the earlier failed attempts, oldest first — so a
          transient-then-different failure is distinguishable from a
          deterministic one repeating verbatim *)
}

exception Task_failed of failure
(** Registered with a printer that includes the task index, description
    and original exception message, so even an uncaught failure
    identifies the task that crashed. *)

val run :
  ?describe:(int -> 'a -> string) ->
  domains:int ->
  tasks:'a array ->
  ('a -> unit) ->
  unit
(** Execute [f task] once for every element of [tasks], using the calling
    domain plus [domains - 1] spawned domains. Returns when all tasks are
    done. [f] must be domain-safe (the campaign runner's task bodies only
    touch per-task state and a mutex-protected sink).

    If any [f] raises, remaining queued tasks are abandoned, all domains
    are joined, and {!Task_failed} is raised carrying the first failure
    (task index, [describe]'s rendering, exception message, backtrace). *)

val run_contained :
  ?describe:(int -> 'a -> string) ->
  domains:int ->
  tasks:'a array ->
  ('a -> unit) ->
  failure list
(** Like {!run}, but self-healing: a task whose [f] raises (including
    [Stack_overflow]) is retried once on the same worker; a task that
    fails twice is {e quarantined} — recorded and skipped — and the pool
    keeps draining the queue. Every task is attempted; the pool never
    poisons. Returns the quarantined failures sorted by task index
    (deterministic: retry happens inline on the worker that saw the
    failure, so the failure set is independent of scheduling), each
    carrying the first attempt's message in [prior_messages]. *)

type steal_report = {
  steals : int;  (** tasks executed by a non-owner worker *)
  retried : int;  (** retry attempts across all tasks *)
}

val run_stealing :
  ?describe:(int -> 'a -> string) ->
  ?seed:int ->
  ?retries:int ->
  ?backoff_s:float * float ->
  ?deadline:float * (int -> 'a -> unit) ->
  ?steal:bool ->
  ?fatal:(exn -> bool) ->
  domains:int ->
  tasks:'a array ->
  (int -> 'a -> unit) ->
  steal_report * failure list
(** The scenario-granular campaign scheduler. Tasks are partitioned into
    contiguous per-worker blocks; each worker pops its own block from the
    front and, when empty, steals from the {e back} of other workers'
    blocks in ring order ([steal], default [true]; [false] gives the
    static contiguous baseline, for measuring what stealing buys). [f]
    receives the task's index alongside the task.

    A failing task is retried up to [retries] (default 1) more times,
    inline on the same worker — so the final failure set is independent
    of the domain layout — sleeping
    [min cap (base * 2^(attempt-1)) * jitter] between attempts
    ([backoff_s] is [(base, cap)], default [(0.001, 0.05)]; the jitter in
    [0.5, 1.5) is a pure splitmix64 function of [seed], task index and
    attempt). Tasks still failing are quarantined and returned sorted by
    index, with earlier attempts' messages in [prior_messages].

    [deadline = (limit_s, on_overdue)] spawns a watchdog domain that
    calls [on_overdue index task] once per task attempt exceeding
    [limit_s] of wall time. The callback runs on the watchdog domain and
    must be domain-safe; the runner uses it to zero the overdue
    execution's fuel cell, converting the hang into an ordinary timeout
    verdict. Each retry attempt restarts the task's clock.

    An exception satisfying [fatal] (default: none) aborts the pool:
    in-flight tasks finish, queued ones are abandoned, every domain is
    joined, and the exception is re-raised to the caller. The kill-point
    fuzzer routes {!Journal.Killed} through this to simulate a crash at
    an exact journal position. *)
