(** One cell of an experiment campaign: "run algorithm X under adversary Y
    on graph Z with inputs I and check agreement/validity/termination".

    Scenarios are pure descriptions — the graph is carried as a {e spec
    string} (the CLI's [-g] syntax) plus a builder thunk, and every
    execution builds a fresh graph instance, so scenarios can be executed
    concurrently on separate domains without sharing mutable graph
    structure, and every failure report doubles as a [lbcast run]
    reproduction command.

    A scenario's {!id} is a canonical string derived from its content
    only (never from enumeration order or scheduling), which is what
    makes campaign grids shardable and resumable: ids are stable across
    runs, domain counts and process restarts. *)

type algo =
  | A1  (** Algorithm 1 (exponential phases, local broadcast) *)
  | A2  (** Algorithm 2 (O(n) rounds, 2f-connected) *)
  | A3 of int  (** Algorithm 3 with equivocation budget [t] (hybrid) *)
  | Relay  (** Dolev-relayed EIG baseline (point-to-point) *)
  | Eig  (** EIG baseline on complete graphs (point-to-point) *)

val algo_name : algo -> string
(** CLI-compatible name: ["a1"], ["a2"], ["a3"], ["relay"], ["eig"]. *)

type t = {
  gname : string;  (** CLI-parsable graph spec, e.g. ["cycle:5"] *)
  build : unit -> Lbc_graph.Graph.t;  (** fresh graph per execution *)
  algo : algo;
  f : int;
  faulty : Lbc_graph.Nodeset.t;
  equivocators : Lbc_graph.Nodeset.t;  (** for {!A3}; empty otherwise *)
  strategy : Lbc_adversary.Strategy.kind;  (** applied to every faulty node *)
  inputs : Lbc_consensus.Bit.t array;
  chaos : Lbc_sim.Perturb.spec option;
      (** environment perturbation installed around the execution
          ({!Lbc_sim.Perturb.with_chaos} with the scenario seed);
          [None] runs the perfect-synchrony model *)
  net : Lbc_net.Net.profile option;
      (** latency model installed around the execution
          ({!Lbc_net.Net.with_net} with the scenario seed); [None] — and
          equivalently the {!Lbc_net.Net.ideal} profile — reports zero
          simulated time and leaves the artifact bytes untouched *)
}

val make :
  gname:string ->
  build:(unit -> Lbc_graph.Graph.t) ->
  algo:algo ->
  f:int ->
  faulty:Lbc_graph.Nodeset.t ->
  ?equivocators:Lbc_graph.Nodeset.t ->
  strategy:Lbc_adversary.Strategy.kind ->
  inputs:Lbc_consensus.Bit.t array ->
  ?chaos:Lbc_sim.Perturb.spec ->
  ?net:Lbc_net.Net.profile ->
  unit ->
  t

val id : t -> string
(** Canonical content-derived identifier, e.g.
    ["a1|cycle:5|f=1|faulty=2|s=flip-forwards|in=00100"]. Stable across
    runs and independent of position in any grid. Scenarios with a chaos
    spec append a [|chaos=...] segment (canonical {!Lbc_sim.Perturb.to_string}
    spelling); [chaos = None] keeps the historical spelling, so existing
    grid fingerprints are unchanged. Scenarios with a non-ideal network
    profile likewise append a [|net=NAME] segment; [net = None] and the
    ideal profile both keep the historical spelling. *)

val repro_command : t -> seed:int -> string
(** The [lbcast run] command line reproducing this scenario (including
    its [--chaos] spec and non-ideal [--net] profile) with the given
    seed. *)

val scenario_seed : base:int -> t -> int
(** The per-scenario RNG seed: a deterministic (FNV-1a) hash of {!id}
    folded with the campaign's base seed. Randomised adversary strategies
    thus behave identically for a given scenario no matter which domain,
    shard or resumed process executes it. *)

type status =
  | Checked  (** the execution ran to completion and was judged *)
  | Timed_out of { budget : int }
      (** the per-scenario round budget ({!Lbc_sim.Engine.with_fuel}) ran
          out — a livelocked or oversized execution, stopped instead of
          hanging its worker domain *)
  | Crashed of { exn : string; backtrace : string; repro : string }
      (** the execution raised (including
          {!Lbc_sim.Engine.Model_violation} and [Stack_overflow]):
          exception message, backtrace captured at the raise, and the
          [lbcast run] command that reproduces it *)

type verdict = {
  index : int;  (** position in the grid's total enumeration order *)
  id : string;
  status : status;
      (** non-{!Checked} verdicts have [ok = false] and zeroed
          rounds/phases/tx/rx *)
  ok : bool;
      (** agreement ∧ validity ∧ termination ∧ (decision = unanimous
          honest input, when the honest inputs are unanimous) *)
  agreement : bool;
  validity : bool;
  termination : bool;  (** every honest node decided *)
  decision : Lbc_consensus.Bit.t option;  (** common decision, if agreed *)
  expected : Lbc_consensus.Bit.t option;
      (** the unanimous honest input, when unanimous *)
  rounds : int;
  phases : int;
  transmissions : int;
  deliveries : int;
  sim_ns : int;
      (** simulated wall-time of the execution under the scenario's
          network profile, ns ({!Lbc_net.Net.with_net}); 0 without a
          profile, under the ideal profile, and on failure verdicts *)
  counterexample : string option;
      (** on failure: per-node outputs plus a [lbcast run] reproduction
          command line *)
}

val crashed_verdict :
  index:int -> id:string -> repro:string -> message:string -> verdict
(** The deterministic crash-record verdict the runner writes when it
    quarantines a scenario whose {e execution machinery} (not the
    scenario itself) failed repeatedly: status {!Crashed} with [message]
    as the exception text, the given reproduction command, and an empty
    backtrace — worker call stacks differ across domain counts, and this
    verdict lives in the artifact's byte-comparable portion. *)

val execute : ?base_seed:int -> ?max_rounds:int -> index:int -> t -> verdict
(** Build a fresh graph and run the scenario to a verdict. [base_seed]
    (default 0) feeds {!scenario_seed}. [max_rounds] installs a fuel
    budget around the execution ({!Lbc_sim.Engine.with_fuel}).

    Contained: an execution that exhausts its budget returns a
    {!Timed_out} verdict, and one that raises anything else (including
    [Stack_overflow]) returns a {!Crashed} verdict carrying the
    exception, its backtrace and a reproduction command — [execute]
    itself never raises on scenario failure. Both failure verdicts are
    deterministic (the backtrace is captured between the raise and this
    handler, on whichever domain runs the scenario), so they live in the
    artifact's byte-comparable portion. *)

val execute_strict :
  ?base_seed:int -> ?max_rounds:int -> index:int -> t -> verdict
(** {!execute} without the containment: scenario exceptions (and
    {!Lbc_sim.Engine.Fuel_exhausted}) propagate to the caller. For
    callers that want a raising scenario to abort the whole batch — the
    runner's strict mode. *)

val execute_observed :
  ?base_seed:int ->
  ?max_rounds:int ->
  index:int ->
  t ->
  verdict * (string * int) list
(** {!execute} under an {!Lbc_obs.Obs.record}: additionally returns the
    scenario's observability counters (instrumentation counters, flattened
    histograms as [name.count]/[name.sum], the verdict's own
    round/phase/tx/rx tallies as [verdict.*], and — for failure verdicts
    — [verdict.timeouts] / [verdict.crashed]), sorted by name. The
    counters are a pure function of the scenario and seed — the execution
    happens wholly on the calling domain, so the list is identical no
    matter which domain or process runs it. *)

val verdict_to_json : verdict -> Jsonio.t
val verdict_of_json : Jsonio.t -> (verdict, string) result

val pp_verdict : Format.formatter -> verdict -> unit
(** One-line human rendering. *)
