module G = Lbc_graph.Graph
module Nodeset = Lbc_graph.Nodeset
module Bit = Lbc_consensus.Bit

type t = { name : string; scenarios : Scenario.t Seq.t }

let make ~name scenarios = { name; scenarios }
let of_list ~name scenarios = { name; scenarios = List.to_seq scenarios }

let append ~name grids =
  { name; scenarios = Seq.concat_map (fun g -> g.scenarios) (List.to_seq grids) }

let to_array t = Array.of_seq t.scenarios
let count t = Seq.length t.scenarios

let shards ~shard_size scenarios =
  if shard_size < 1 then invalid_arg "Grid.shards: shard_size < 1";
  let n = Array.length scenarios in
  let nshards = (n + shard_size - 1) / shard_size in
  Array.init nshards (fun i ->
      let lo = i * shard_size in
      (i, Array.sub scenarios lo (min shard_size (n - lo))))

let fingerprint scenarios =
  let h = ref 0x0BF29CE484222325 in
  Array.iter
    (fun s ->
      String.iter
        (fun c ->
          h := !h lxor Char.code c;
          h := !h * 0x100000001b3)
        (Scenario.id s ^ "\n"))
    scenarios;
  Printf.sprintf "%016x" (!h land max_int)

(* ------------------------------------------------------------------ *)
(* Cartesian products                                                  *)
(* ------------------------------------------------------------------ *)

let product ?(net = [ None ]) ?(chaos = [ None ]) ~name ~graphs ~algos
    ~placements ~strategies ~inputs () =
  let scenarios =
    Seq.concat_map
      (fun (gname, f, build) ->
        (* One instance to drive enumeration; executions build afresh. *)
        let g = build () in
        Seq.concat_map
          (fun algo ->
            Seq.concat_map
              (fun faulty ->
                Seq.concat_map
                  (fun strategy ->
                    Seq.concat_map
                      (fun iv ->
                        Seq.concat_map
                          (fun np ->
                            Seq.map
                              (fun ch ->
                                Scenario.make ~gname ~build ~algo ~f ~faulty
                                  ~strategy ~inputs:iv ?chaos:ch ?net:np ())
                              (List.to_seq chaos))
                          (List.to_seq net))
                      (List.to_seq (inputs g ~faulty)))
                  (List.to_seq strategies))
              (List.to_seq (placements g ~f)))
          (List.to_seq algos))
      (List.to_seq graphs)
  in
  { name; scenarios }

let with_chaos spec t =
  {
    t with
    scenarios =
      Seq.map (fun s -> { s with Scenario.chaos = Some spec }) t.scenarios;
  }

let chaos_points specs = List.map Option.some specs

let with_net profile t =
  {
    t with
    scenarios =
      Seq.map (fun s -> { s with Scenario.net = Some profile }) t.scenarios;
  }

let net_points profiles = List.map Option.some profiles

(* ------------------------------------------------------------------ *)
(* Axis helpers                                                        *)
(* ------------------------------------------------------------------ *)

let singleton_placements g ~f:_ =
  List.map Nodeset.singleton (G.nodes g)

let placements_of_size k g ~f:_ =
  List.map Nodeset.of_list (Lbc_graph.Combi.combinations (G.nodes g) k)

let placements_up_to_f g ~f =
  List.map Nodeset.of_list (Lbc_graph.Combi.subsets_up_to (G.nodes g) f)

let unanimous_inputs g ~faulty =
  List.map
    (fun uni ->
      Array.init (G.size g) (fun v ->
          if Nodeset.mem v faulty then Bit.flip uni else uni))
    [ Bit.Zero; Bit.One ]

let all_inputs ?(cap = 12) g ~faulty:_ =
  let n = G.size g in
  if n > cap then
    invalid_arg
      (Printf.sprintf "Grid.all_inputs: 2^%d assignments exceed cap %d" n cap);
  List.init (1 lsl n) (fun code ->
      Array.init n (fun v -> Bit.of_int ((code lsr v) land 1)))
