type dist =
  | Constant of int
  | Uniform of { lo : int; hi : int }
  | Lognormal of { mu : float; sigma : float; cap : int }

type profile = { pname : string; base : dist; jitter : dist; compute : dist }

let dist_is_zero = function
  | Constant c -> c = 0
  | Uniform { lo; hi } -> lo = 0 && hi = 0
  | Lognormal _ -> false

let is_ideal p =
  dist_is_zero p.base && dist_is_zero p.jitter && dist_is_zero p.compute

let zero = Constant 0
let ideal = { pname = "ideal"; base = zero; jitter = zero; compute = zero }

let us n = n * 1_000
let ms n = n * 1_000_000

let lan =
  {
    pname = "lan";
    base = Uniform { lo = us 50; hi = us 200 };
    jitter = Uniform { lo = 0; hi = us 100 };
    compute = Constant (us 20);
  }

(* mu/sigma are log-ns: e^13 ~ 0.44 ms median jitter for wan; heavy-tail
   puts e^14 ~ 1.2 ms at the median with sigma 2.5, so the p99 lives in
   the hundreds of milliseconds and the cap (2 s) bites occasionally. *)
let wan =
  {
    pname = "wan";
    base = Uniform { lo = ms 10; hi = ms 80 };
    jitter = Lognormal { mu = 13.0; sigma = 1.0; cap = ms 200 };
    compute = Constant (us 100);
  }

let satellite =
  {
    pname = "satellite";
    base = Constant (ms 280);
    jitter = Uniform { lo = 0; hi = ms 30 };
    compute = Constant (us 100);
  }

let heavy_tail =
  {
    pname = "heavy-tail";
    base = Uniform { lo = ms 1; hi = ms 10 };
    jitter = Lognormal { mu = 14.0; sigma = 2.5; cap = ms 2_000 };
    compute = Constant (us 50);
  }

let names = [ "ideal"; "lan"; "wan"; "satellite"; "heavy-tail" ]
let name p = p.pname

let parse s =
  match String.trim s with
  | "" | "none" | "ideal" -> Ok ideal
  | "lan" -> Ok lan
  | "wan" -> Ok wan
  | "satellite" -> Ok satellite
  | "heavy-tail" | "heavy_tail" -> Ok heavy_tail
  | str -> (
      match String.index_opt str ':' with
      | Some i when String.sub str 0 i = "const" -> (
          let v = String.sub str (i + 1) (String.length str - i - 1) in
          match int_of_string_opt v with
          | Some ns when ns >= 0 ->
              Ok
                {
                  pname = "const:" ^ string_of_int ns;
                  base = Constant ns;
                  jitter = zero;
                  compute = zero;
                }
          | Some _ | None ->
              Error (Printf.sprintf "net: const:%S is not a non-negative ns count" v))
      | _ ->
          Error
            (Printf.sprintf "net: unknown profile %S (expected %s or const:NS)"
               str
               (String.concat ", " names)))

let pp fmt p = Format.pp_print_string fmt p.pname

(* ------------------------------------------------------------------ *)
(* Decision oracle: splitmix64, mirroring lib/sim/perturb               *)
(* ------------------------------------------------------------------ *)

type ctx = {
  cprofile : profile;
  cseed : int;
  mutable total_ns : int;
  (* binary min-heap of this round's completion times (ns); reused
     across rounds to stay allocation-light on instrumented hot paths *)
  mutable heap : int array;
  mutable hsize : int;
}

let make cprofile ~seed =
  { cprofile; cseed = seed; total_ns = 0; heap = Array.make 16 0; hsize = 0 }

let profile c = c.cprofile
let seed c = c.cseed
let sim_ns c = c.total_ns

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let hash ctx ~salt ~round ~a ~b =
  let open Int64 in
  let z = mix64 (add (of_int ctx.cseed) 0x9e3779b97f4a7c15L) in
  let z = mix64 (logxor z (of_int salt)) in
  let z = mix64 (logxor z (of_int round)) in
  let z = mix64 (logxor z (of_int a)) in
  mix64 (logxor z (of_int b))

(* Top 53 bits -> uniform float in [0, 1). *)
let uniform ctx ~salt ~round ~a ~b =
  Int64.to_float (Int64.shift_right_logical (hash ctx ~salt ~round ~a ~b) 11)
  /. 9007199254740992.0

let uniform_int ctx ~salt ~round ~a ~b ~bound =
  Int64.to_int
    (Int64.rem
       (Int64.shift_right_logical (hash ctx ~salt ~round ~a ~b) 1)
       (Int64.of_int bound))

(* Salts 16+ keep the net sample streams independent of perturb's
   decision streams (salts 1-7) over the same (seed, round, link)
   coordinates. Each Lognormal consumes salt and salt+1 (Box-Muller). *)
let salt_base = 16
let salt_jitter = 18
let salt_compute = 20

let sample ctx dist ~salt ~round ~a ~b =
  match dist with
  | Constant c -> c
  | Uniform { lo; hi } ->
      if hi <= lo then lo
      else lo + uniform_int ctx ~salt ~round ~a ~b ~bound:(hi - lo + 1)
  | Lognormal { mu; sigma; cap } ->
      (* Box-Muller from two hash-derived uniforms; u1 is shifted into
         (0, 1] so the log is finite. *)
      let u1 =
        (Int64.to_float
           (Int64.shift_right_logical (hash ctx ~salt ~round ~a ~b) 11)
        +. 1.0)
        /. 9007199254740992.0
      in
      let u2 = uniform ctx ~salt:(salt + 1) ~round ~a ~b in
      let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
      let x = exp (mu +. (sigma *. z)) in
      if Float.is_nan x || x < 0.0 then 0
      else if x >= float_of_int cap then cap
      else int_of_float x

let link_latency_ns ctx ~round ~sender ~receiver =
  let p = ctx.cprofile in
  sample ctx p.compute ~salt:salt_compute ~round ~a:sender ~b:0
  (* base is per directed link, round-independent: keyed at round 0 *)
  + sample ctx p.base ~salt:salt_base ~round:0 ~a:sender ~b:receiver
  + sample ctx p.jitter ~salt:salt_jitter ~round ~a:sender ~b:receiver

(* ------------------------------------------------------------------ *)
(* Simulated-clock event queue                                          *)
(* ------------------------------------------------------------------ *)

let push ctx v =
  let n = ctx.hsize in
  if n = Array.length ctx.heap then begin
    let bigger = Array.make (2 * n) 0 in
    Array.blit ctx.heap 0 bigger 0 n;
    ctx.heap <- bigger
  end;
  ctx.heap.(n) <- v;
  ctx.hsize <- n + 1;
  let i = ref n in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    ctx.heap.(parent) > ctx.heap.(!i)
  do
    let parent = (!i - 1) / 2 in
    let tmp = ctx.heap.(parent) in
    ctx.heap.(parent) <- ctx.heap.(!i);
    ctx.heap.(!i) <- tmp;
    i := parent
  done

let pop ctx =
  let top = ctx.heap.(0) in
  ctx.hsize <- ctx.hsize - 1;
  ctx.heap.(0) <- ctx.heap.(ctx.hsize);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < ctx.hsize && ctx.heap.(l) < ctx.heap.(!smallest) then smallest := l;
    if r < ctx.hsize && ctx.heap.(r) < ctx.heap.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tmp = ctx.heap.(!smallest) in
      ctx.heap.(!smallest) <- ctx.heap.(!i);
      ctx.heap.(!i) <- tmp;
      i := !smallest
    end
  done;
  top

let begin_round ctx = ctx.hsize <- 0

let on_delivery ctx ~round ~sender ~receiver =
  let lat = link_latency_ns ctx ~round ~sender ~receiver in
  (* Zero-latency deliveries queue nothing and record nothing: under the
     ideal profile the whole layer is a no-op, which is what keeps
     fingerprints of no-net and ideal-net runs byte-identical. *)
  if lat > 0 then begin
    Lbc_obs.Obs.observe "net.link_ns" lat;
    push ctx lat
  end

let end_round ctx ~round =
  if ctx.hsize > 0 then begin
    (* Drain completions in simulated-time order; the last one out is
       the barrier the synchronous round waits on. *)
    let duration = ref 0 in
    while ctx.hsize > 0 do
      let t = pop ctx in
      duration := t;
      if Lbc_obs.Obs.tracing () then
        Lbc_obs.Obs.emit
          { Lbc_obs.Obs.round; label = "net.delivery"; fields = [ ("ns", t) ] }
    done;
    ctx.total_ns <- ctx.total_ns + !duration;
    Lbc_obs.Obs.observe "net.round_ns" !duration
  end

(* ------------------------------------------------------------------ *)
(* Ambient installation (Domain.DLS, same idiom as Perturb)             *)
(* ------------------------------------------------------------------ *)

let key : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_net profile ~seed f =
  let prev = Domain.DLS.get key in
  let ctx = make profile ~seed in
  Domain.DLS.set key (Some ctx);
  let result = Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f in
  if ctx.total_ns > 0 then Lbc_obs.Obs.add "net.sim_ns" ctx.total_ns;
  (result, ctx.total_ns)

let current () = Domain.DLS.get key

let sim_time_s ns = float_of_int ns /. 1e9
