(** Latency-realistic network model over the synchronous engine.

    The paper's results are stated in synchronous {e rounds}; an
    operator cares about {e wall-time} under heterogeneous links. This
    module bridges the two without leaving the synchronous abstraction:
    every delivery the engine performs is assigned a latency drawn from
    a per-profile distribution, the completions of one round are drained
    through a simulated-clock event queue, and the round's {e duration}
    is the time its slowest delivery completes — the barrier a
    synchronous round waits on. Summed over the execution this yields a
    simulated wall-time ([sim_ns]) reported alongside round counts.

    Latencies are {e integer nanoseconds} (summation is exact; no
    float-ordering hazards) and every sample is a pure splitmix64
    function of [(seed, round, sender, receiver)] — the same decision
    style as {!Lbc_sim.Perturb}, with disjoint hash salts, so a profiled
    execution is exactly reproducible from the scenario seed on any
    domain, in any schedule, and composes freely with chaos
    perturbation.

    The {!ideal} profile (all distributions zero) is observationally
    equivalent to running without any network layer: no events are
    queued, no [net.*] counters or histograms are recorded, and the
    accumulated simulated time is 0 — the analogue of perturb's
    zero-rate equivalence, tested as such.

    Installation is ambient and domain-local ({!with_net}), same idiom
    as {!Lbc_sim.Perturb.with_chaos}: the engine consults {!current};
    algorithm call sites need no new parameters. *)

(** {1 Delay distributions} *)

type dist =
  | Constant of int  (** fixed latency, ns *)
  | Uniform of { lo : int; hi : int }  (** uniform on [lo, hi], ns *)
  | Lognormal of { mu : float; sigma : float; cap : int }
      (** [exp (mu + sigma·Z)] ns, truncated to [cap] — heavy-tailed
          link behaviour; [mu]/[sigma] are in log-ns space *)

type profile = {
  pname : string;  (** canonical name; the [|net=] id segment *)
  base : dist;
      (** per-directed-link propagation delay, sampled once per link
          (round-independent) *)
  jitter : dist;  (** per-(round, link) additional delay *)
  compute : dist;  (** per-(round, sender) processing cost *)
}

val ideal : profile
(** All distributions zero — the identity network. *)

val is_ideal : profile -> bool
(** [true] iff every distribution is statically zero; such a profile is
    observationally equivalent to no network layer at all, and scenario
    ids keep their historical spelling for it. *)

val lan : profile
(** Sub-millisecond links: 50–200 µs base, up to 100 µs jitter. *)

val wan : profile
(** Inter-region links: 10–80 ms base with lognormal jitter. *)

val satellite : profile
(** Geostationary hop: 280 ms constant base, up to 30 ms jitter. *)

val heavy_tail : profile
(** Mild base (1–10 ms) with a heavy lognormal tail (σ = 2.5, capped at
    2 s) — the stress profile for tail-latency studies. *)

val names : string list
(** The named profiles accepted by {!parse}, for help text. *)

val name : profile -> string
(** Canonical name: {!parse} [ (name p) ] recovers [p]. *)

val parse : string -> (profile, string) result
(** ["ideal"], ["lan"], ["wan"], ["satellite"], ["heavy-tail"], or the
    parametric form ["const:NS"] (every link a constant [NS]
    nanoseconds). ["none"] parses to {!ideal}. *)

val pp : Format.formatter -> profile -> unit

(** {1 Decision oracle} *)

type ctx
(** A profile bound to a seed plus the running simulated clock: the
    oracle the engine consults. Mutable (clock, per-round event queue);
    confined to one domain by {!with_net}. *)

val make : profile -> seed:int -> ctx
val profile : ctx -> profile
val seed : ctx -> int

val link_latency_ns : ctx -> round:int -> sender:int -> receiver:int -> int
(** Total latency of one delivery: [compute(round, sender) + base(link)
    + jitter(round, link)], ns. Pure in the coordinates — the engine and
    the tests see the same numbers. *)

val sim_ns : ctx -> int
(** Simulated time accumulated so far (sum of round durations), ns. *)

(** {1 Engine hooks}

    Called by {!Lbc_sim.Engine.run} when a context is installed. The
    queue discipline: {!begin_round} resets the round's event queue,
    each {!on_delivery} pushes one completion event (and records the
    [net.link_ns] histogram), and {!end_round} drains completions in
    simulated-time order — emitting [net.delivery] trace events when
    tracing — then advances the clock by the round's duration (the last,
    i.e. largest, completion) and records it in [net.round_ns]. A round
    with no positive-latency delivery advances the clock by 0 and
    records nothing, which is what makes {!ideal} free. *)

val begin_round : ctx -> unit
val on_delivery : ctx -> round:int -> sender:int -> receiver:int -> unit
val end_round : ctx -> round:int -> unit

(** {1 Ambient installation} *)

val with_net : profile -> seed:int -> (unit -> 'a) -> 'a * int
(** Install a context for the current domain around a thunk (restoring
    the previous one, also on exception) and return the thunk's result
    with the simulated time (ns) accumulated across every engine run in
    the extent — multi-phase algorithms sum their phases. When positive,
    the total is also recorded as the [net.sim_ns] counter. *)

val current : unit -> ctx option
(** The context installed in the current domain, if any. *)

val sim_time_s : int -> float
(** Display conversion: nanoseconds to seconds. *)
