(* lbclint: determinism & domain-safety analyzer for this repository.

   Walks every .ml/.mli under the given roots (default: lib bin bench
   test examples), enforces rules D1-D6 (see lib/lint/rules.mli),
   honours inline suppressions and the checked-in baseline, and exits
   0 (clean), 1 (findings) or 2 (configuration/parse error). With
   --deep it additionally loads the .cmt/.cmti typed ASTs dune emitted
   under _build/default and runs the whole-program rules E1/E2/E3/E4/M1
   (gating) and X1 (advisory). Also available as `lbcast lint`. *)

open Cmdliner

let do_lint roots baseline write_baseline update_baseline json deep sarif
    deep_cache =
  Lbc_lint.Driver.main
    {
      Lbc_lint.Driver.roots;
      baseline;
      write_baseline;
      update_baseline;
      json;
      deep;
      sarif;
      deep_cache;
    }

let roots_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"PATH"
        ~doc:
          "Files or directories to lint (default: lib bin bench test \
           examples). Directories named _build, .git, lint_fixtures and \
           deep_fixtures are skipped during recursion.")

let baseline_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "baseline" ] ~docv:"FILE"
        ~doc:
          "Checked-in baseline of grandfathered findings (RULE FILE COUNT \
           per line; rules D2/D4/D5 and the deep rules E1-E4/M1/X1 are \
           baselinable).")

let write_baseline_arg =
  Arg.(
    value & flag
    & info [ "write-baseline" ]
        ~doc:
          "Regenerate $(b,--baseline) from the current findings instead of \
           gating on it. Non-baselinable findings (D1/D3/D6, malformed \
           suppressions) are printed and keep the exit code non-zero.")

let update_baseline_arg =
  Arg.(
    value & flag
    & info [ "update-baseline" ]
        ~doc:
          "Shrink $(b,--baseline) to the current findings: per-entry counts \
           drop to what the run still produces, entries that reach zero are \
           removed, and no entry is ever added or grown. The gate then runs \
           against the shrunk baseline.")

let json_arg =
  Arg.(
    value & flag
    & info [ "json" ]
        ~doc:
          "Emit a machine-readable lbclint/3 JSON report instead of \
           human-readable lines.")

let deep_arg =
  Arg.(
    value & flag
    & info [ "deep" ]
        ~doc:
          "Also run the whole-program pass over the typed ASTs under \
           _build/default (requires a prior $(b,dune build)): E1 \
           nondeterminism taint into verdict/artifact/fingerprint paths, \
           E2 unguarded cross-domain mutable state, E3 lockset data races \
           (no common mutex across spawn-reachable access paths), E4 \
           check-then-act atomicity violations, M1 the local-broadcast \
           model invariant (no Engine.Unicast outside lib/adversary and \
           lib/lowerbound), and the advisory X1 dead-export report.")

let sarif_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "sarif" ] ~docv:"FILE"
        ~doc:
          "Also write the findings as a SARIF 2.1.0 document to $(docv) \
           (suppressed and baselined findings included with their \
           suppression kind).")

let deep_cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "deep-cache" ] ~docv:"DIR"
        ~doc:
          "Incremental cache directory for the $(b,--deep) pass: per-unit \
           analysis summaries keyed by .cmt digests and the program \
           closure, so a warm run re-analyzes only changed modules.")

let cmd =
  Cmd.v
    (Cmd.info "lbclint" ~version:"1.1.0"
       ~doc:
         "Static determinism & domain-safety analyzer (rules D1-D6, deep \
          rules E1/E2/E3/E4/M1/X1) for the lbcast repository.")
    Term.(
      const do_lint $ roots_arg $ baseline_arg $ write_baseline_arg
      $ update_baseline_arg $ json_arg $ deep_arg $ sarif_arg $ deep_cache_arg)

let () = exit (Cmd.eval' cmd)
