(* lbcast: command-line front end for the local-broadcast Byzantine
   consensus library (Khan-Naqvi-Vaidya, PODC 2019 reproduction).

   Subcommands:
     check    - evaluate the feasibility conditions of all three models
     gen      - emit a built-in graph (edge list or Graphviz)
     run      - simulate a consensus algorithm under an adversary
     attack   - execute a necessity gadget (Lemma A.1 / A.2)
     sweep    - print the hybrid equivocation trade-off tables
     campaign - run a declarative scenario grid on a domain pool,
                checkpointed and resumable, emitting a JSON artifact
     report   - parse a campaign artifact, print its summary             *)

module B = Lbc_graph.Builders
module G = Lbc_graph.Graph
module D = Lbc_graph.Disjoint
module Cond = Lbc_graph.Conditions
module Nodeset = Lbc_graph.Nodeset
module Bit = Lbc_consensus.Bit
module Spec = Lbc_consensus.Spec
module A1 = Lbc_consensus.Algorithm1
module A2 = Lbc_consensus.Algorithm2
module A3 = Lbc_consensus.Algorithm3
module EIG = Lbc_consensus.Baseline_eig
module Relay = Lbc_consensus.Baseline_relay
module S = Lbc_adversary.Strategy
module Gadget = Lbc_lowerbound.Gadget
module Perturb = Lbc_sim.Perturb
module Engine = Lbc_sim.Engine
module Net = Lbc_net.Net

(* ------------------------------------------------------------------ *)
(* Parsers                                                              *)
(* ------------------------------------------------------------------ *)

let parse_graph spec =
  let fail msg = Error (`Msg msg) in
  let int s = int_of_string_opt s in
  match String.split_on_char ':' spec with
  | [ "fig1a" ] -> Ok (B.fig1a ())
  | [ "fig1b" ] -> Ok (B.fig1b ())
  | [ "petersen" ] -> Ok (B.petersen ())
  | [ "cycle"; n ] | [ "ring"; n ] -> (
      match int n with Some n -> Ok (B.cycle n) | None -> fail "bad n")
  | [ "path"; n ] -> (
      match int n with Some n -> Ok (B.path_graph n) | None -> fail "bad n")
  | [ "complete"; n ] | [ "k"; n ] -> (
      match int n with Some n -> Ok (B.complete n) | None -> fail "bad n")
  | [ "star"; n ] -> (
      match int n with Some n -> Ok (B.star n) | None -> fail "bad n")
  | [ "wheel"; n ] -> (
      match int n with Some n -> Ok (B.wheel n) | None -> fail "bad n")
  | [ "hypercube"; d ] -> (
      match int d with Some d -> Ok (B.hypercube d) | None -> fail "bad d")
  | [ "tight"; f ] -> (
      match int f with Some f -> Ok (B.tight f) | None -> fail "bad f")
  | [ "torus"; wh ] | [ "grid"; wh ] -> (
      match String.split_on_char 'x' wh with
      | [ w; h ] -> (
          match (int w, int h) with
          | Some w, Some h ->
              if String.length spec >= 5 && String.sub spec 0 5 = "torus" then
                Ok (B.torus w h)
              else Ok (B.grid w h)
          | _ -> fail "bad dimensions")
      | _ -> fail "expected WxH")
  | [ "circulant"; n; jumps ] -> (
      match int n with
      | Some n -> (
          let js =
            String.split_on_char ',' jumps |> List.filter_map int_of_string_opt
          in
          match js with [] -> fail "bad jumps" | _ -> Ok (B.circulant n js))
      | None -> fail "bad n")
  | [ "harary"; k; n ] -> (
      match (int k, int n) with
      | Some k, Some n -> Ok (B.harary k n)
      | _ -> fail "bad k/n")
  | [ "gnp"; n; p; seed ] -> (
      match (int n, float_of_string_opt p, int seed) with
      | Some n, Some p, Some seed -> Ok (B.random_gnp ~seed n p)
      | _ -> fail "bad gnp parameters")
  | [ "file"; path ] -> (
      match Lbc_graph.Graphio.of_file path with
      | Ok g -> Ok g
      | Error msg -> fail (path ^ ": " ^ msg))
  | [ "edges"; n; es ] -> (
      match int n with
      | Some n -> (
          try
            let edges =
              String.split_on_char ',' es
              |> List.map (fun e ->
                     match String.split_on_char '-' e with
                     | [ u; v ] -> (int_of_string u, int_of_string v)
                     | _ -> failwith "bad edge")
            in
            Ok (G.of_edges n edges)
          with Failure _ | Invalid_argument _ -> fail "bad edge list")
      | None -> fail "bad n")
  | _ ->
      fail
        (spec
       ^ ": unknown graph. Try fig1a, fig1b, petersen, cycle:N, path:N, \
          complete:N, star:N, wheel:N, hypercube:D, tight:F, torus:WxH, \
          grid:WxH, circulant:N:J1,J2, harary:K:N, gnp:N:P:SEED, \
          edges:N:0-1,1-2,..., file:PATH")

let graph_conv =
  Cmdliner.Arg.conv (parse_graph, fun fmt g -> G.pp fmt g)

let parse_id_list s =
  try
    Some
      (Nodeset.of_list (List.map int_of_string (String.split_on_char ',' s)))
  with Failure _ -> None

let parse_strategy s =
  match String.split_on_char ':' s with
  | [ "silent" ] -> Ok S.Silent
  | [ "honest" ] -> Ok S.Honest_behavior
  | [ "lie" ] -> Ok S.Lie
  | [ "flip" ] | [ "flip-forwards" ] -> Ok S.Flip_forwards
  | [ "equivocate" ] -> Ok S.Equivocate
  | [ "crash"; r ] -> (
      match int_of_string_opt r with
      | Some r -> Ok (S.Crash_at r)
      | None -> Error (`Msg "bad round"))
  | [ "spurious"; k ] -> (
      match int_of_string_opt k with
      | Some k -> Ok (S.Spurious k)
      | None -> Error (`Msg "bad count"))
  | [ "noise"; k ] -> (
      match int_of_string_opt k with
      | Some k -> Ok (S.Noise k)
      | None -> Error (`Msg "bad count"))
  | [ "omit"; ids ] -> (
      match parse_id_list ids with
      | Some set -> Ok (S.Omit_from set)
      | None -> Error (`Msg "bad node list"))
  | [ "flip-from"; ids ] -> (
      match parse_id_list ids with
      | Some set -> Ok (S.Flip_from set)
      | None -> Error (`Msg "bad node list"))
  | [ "omit-sampled"; k ] -> (
      match int_of_string_opt k with
      | Some k -> Ok (S.Omit_sampled k)
      | None -> Error (`Msg "bad salt"))
  | _ ->
      Error
        (`Msg
          (s
         ^ ": unknown strategy (silent, honest, lie, flip, equivocate, \
            crash:R, spurious:K, noise:K, omit:IDS, flip-from:IDS, \
            omit-sampled:K)"))

let strategy_conv = Cmdliner.Arg.conv (parse_strategy, S.pp_kind)

let parse_nodeset s =
  if s = "" then Ok Nodeset.empty
  else
    try
      Ok
        (Nodeset.of_list
           (List.map int_of_string (String.split_on_char ',' s)))
    with Failure _ -> Error (`Msg "expected comma-separated node ids")

let nodeset_conv = Cmdliner.Arg.conv (parse_nodeset, Nodeset.pp)

let parse_inputs s =
  try
    Ok
      (Array.init (String.length s) (fun i ->
           Bit.of_int (Char.code s.[i] - Char.code '0')))
  with Invalid_argument _ ->
    Error (`Msg "expected a 01-string, e.g. 01011")

let inputs_conv =
  Cmdliner.Arg.conv
    ( parse_inputs,
      fun fmt a ->
        Array.iter (fun b -> Format.pp_print_string fmt (Bit.to_string b)) a )

let chaos_conv =
  Cmdliner.Arg.conv
    ( (fun s ->
        match Perturb.parse s with
        | Ok spec -> Ok spec
        | Error m -> Error (`Msg m)),
      Perturb.pp )

let net_conv =
  Cmdliner.Arg.conv
    ( (fun s ->
        match Net.parse s with Ok p -> Ok p | Error m -> Error (`Msg m)),
      Net.pp )

(* ------------------------------------------------------------------ *)
(* check                                                                *)
(* ------------------------------------------------------------------ *)

let do_check g f t =
  Printf.printf "nodes          : %d\n" (G.size g);
  Printf.printf "edges          : %d\n" (G.num_edges g);
  Printf.printf "min degree     : %d\n" (G.min_degree g);
  Printf.printf "connectivity   : %d\n" (D.connectivity g);
  Printf.printf "\nper-model feasibility at f=%d:\n" f;
  Printf.printf "  local broadcast : %b  (needs min degree >= %d, κ >= %d)\n"
    (Cond.lbc_feasible g ~f) (2 * f)
    (Cond.lbc_required_connectivity f);
  Printf.printf "  point-to-point  : %b  (needs n >= %d, κ >= %d)\n"
    (Cond.p2p_feasible g ~f)
    ((3 * f) + 1)
    (Cond.p2p_required_connectivity f);
  if t <= f then
    Printf.printf "  hybrid (t=%d)    : %b  (needs κ >= %d%s)\n" t
      (Cond.hybrid_feasible g ~f ~t)
      (Cond.hybrid_required_connectivity ~f ~t)
      (if t = 0 then Printf.sprintf ", min degree >= %d" (2 * f)
       else Printf.sprintf ", |N(S)| >= %d for |S| <= %d" ((2 * f) + 1) t);
  let explain name verdict =
    match verdict with
    | Cond.Feasible -> ()
    | v -> Printf.printf "    %s: %s\n" name (Format.asprintf "%a" Cond.pp_verdict v)
  in
  explain "lbc witness" (Cond.lbc_explain g ~f);
  explain "p2p witness" (Cond.p2p_explain g ~f);
  if t <= f then explain "hybrid witness" (Cond.hybrid_explain g ~f ~t);
  Printf.printf "\nmaximum tolerable f:\n";
  Printf.printf "  local broadcast : %d\n" (Cond.max_f_lbc g);
  Printf.printf "  point-to-point  : %d\n" (Cond.max_f_p2p g);
  Printf.printf "  hybrid (t=%d)    : %d\n" t (Cond.max_f_hybrid g ~t);
  0

(* ------------------------------------------------------------------ *)
(* gen                                                                  *)
(* ------------------------------------------------------------------ *)

let do_gen g dot =
  if dot then print_string (G.to_dot g)
  else begin
    Printf.printf "# %d nodes\n" (G.size g);
    List.iter (fun (u, v) -> Printf.printf "%d %d\n" u v) (G.edges g)
  end;
  0

(* ------------------------------------------------------------------ *)
(* run                                                                  *)
(* ------------------------------------------------------------------ *)

let do_run g algo f t inputs faulty equivocators strategy seed chaos net
    max_rounds stats trace =
  let n = G.size g in
  let inputs =
    match inputs with
    | Some a when Array.length a = n -> a
    | Some _ ->
        Printf.eprintf "inputs length must equal graph size %d\n" n;
        exit 2
    | None ->
        Array.init n (fun v -> if Nodeset.mem v faulty then Bit.One else Bit.Zero)
  in
  let strat _ = strategy in
  let execute () =
    match algo with
    | "auto" -> (
        match
          Lbc_consensus.Solve.run ~g ~f ~inputs ~faulty ~strategy:strat ~seed
            ()
        with
        | Ok (choice, o) ->
            Printf.printf "selected: %s\n"
              (Format.asprintf "%a" Lbc_consensus.Solve.pp_choice choice);
            o
        | Error verdict ->
            Printf.eprintf "graph infeasible for f=%d: %s\n" f
              (Format.asprintf "%a" Cond.pp_verdict verdict);
            exit 3)
    | "a1" -> A1.run ~g ~f ~inputs ~faulty ~strategy:strat ~seed ()
    | "a2" -> A2.run ~g ~f ~inputs ~faulty ~strategy:strat ~seed ()
    | "a3" ->
        A3.run ~g ~f ~t ~inputs ~faulty ~equivocators ~strategy:strat ~seed ()
    | "eig" -> EIG.run ~n ~f ~inputs ~faulty ~attack:(EIG.Equivocate seed) ()
    | "relay" -> Relay.run ~g ~f ~inputs ~faulty ~strategy:strat ~seed ()
    | other ->
        Printf.eprintf "unknown algorithm %s (auto, a1, a2, a3, eig, relay)\n"
          other;
        exit 2
  in
  let execute () =
    let perturbed () =
      match chaos with
      | None -> execute ()
      | Some spec -> Perturb.with_chaos spec ~seed execute
    in
    let networked () =
      match net with
      | None -> (perturbed (), 0)
      | Some p -> Net.with_net p ~seed perturbed
    in
    match max_rounds with
    | None -> networked ()
    | Some budget -> Engine.with_fuel ~budget networked
  in
  (* Observability is opt-in: without --stats/--trace no recorder is
     installed and the instrumentation stays on its zero-cost path. *)
  let observe = stats || trace <> None in
  let (o, sim_ns), report =
    try
      if observe then
        Lbc_obs.Obs.record ~trace:(trace <> None) execute
      else
        ( execute (),
          { Lbc_obs.Obs.counters = []; stats = []; events = [] } )
    with Engine.Fuel_exhausted { budget } ->
      Printf.eprintf "run exceeded the %d-round budget (--max-rounds)\n" budget;
      exit 4
  in
  (match chaos with
  | Some spec when not (Perturb.is_zero spec) ->
      Printf.printf "chaos    : %s\n" (Perturb.to_string spec)
  | _ -> ());
  Printf.printf "inputs   : %s\n"
    (String.concat "" (Array.to_list (Array.map Bit.to_string inputs)));
  Printf.printf "faulty   : %s (strategy %s)\n" (Nodeset.to_string faulty)
    (Format.asprintf "%a" S.pp_kind strategy);
  Array.iteri
    (fun v out ->
      match out with
      | Some b -> Printf.printf "node %2d  : decides %s\n" v (Bit.to_string b)
      | None -> Printf.printf "node %2d  : faulty\n" v)
    o.Spec.outputs;
  Printf.printf "agreement: %b\nvalidity : %b\n" (Spec.agreement o)
    (Spec.validity o);
  Printf.printf "cost     : %d phases, %d rounds, %d transmissions\n"
    o.Spec.phases o.Spec.rounds o.Spec.transmissions;
  (match net with
  | Some p when not (Net.is_ideal p) ->
      Printf.printf "sim time : %.6f s (net profile %s)\n"
        (Net.sim_time_s sim_ns) (Net.name p)
  | Some _ | None -> ());
  if stats then begin
    Printf.printf "counters :\n";
    List.iter
      (fun (k, v) -> Printf.printf "  %-32s %d\n" k v)
      report.Lbc_obs.Obs.counters;
    List.iter
      (fun (k, (s : Lbc_obs.Obs.stat)) ->
        Printf.printf "  %-32s count=%d sum=%d min=%d max=%d\n" k s.count
          s.sum s.min s.max)
      report.Lbc_obs.Obs.stats
  end;
  (match trace with
  | None -> ()
  | Some path ->
      Out_channel.with_open_text path (fun oc ->
          let fmt = Format.formatter_of_out_channel oc in
          Lbc_sim.Tracefmt.pp_events fmt report.Lbc_obs.Obs.events;
          Format.pp_print_flush fmt ());
      Printf.printf "trace    : %d events -> %s\n"
        (List.length report.Lbc_obs.Obs.events)
        path);
  if Spec.consensus_ok o then 0 else 1

(* ------------------------------------------------------------------ *)
(* attack                                                               *)
(* ------------------------------------------------------------------ *)

let do_attack g lemma f t =
  let gadget =
    match lemma with
    | "degree" -> Gadget.degree_gadget g ~f ()
    | "connectivity" -> Gadget.connectivity_gadget g ~f ()
    | "hybrid-neighborhood" -> Gadget.hybrid_neighborhood_gadget g ~f ~t ()
    | "hybrid-connectivity" -> Gadget.hybrid_connectivity_gadget g ~f ~t ()
    | other ->
        Printf.eprintf
          "unknown lemma %s (degree, connectivity, hybrid-neighborhood, \
           hybrid-connectivity)\n"
          other;
        exit 2
  in
  Printf.printf "%s\n" (Gadget.describe gadget);
  let hybrid = t > 0 in
  let proc =
    if hybrid then A3.proc ~g ~f ~t else A1.proc ~g ~f
  in
  let rounds =
    if hybrid then A3.phases ~g ~f ~t * G.size g else A1.rounds ~g ~f
  in
  Printf.printf "running Algorithm 1 on the doubled network (%d nodes, %d \
                 rounds)...\n"
    (Gadget.network_size gadget)
    rounds;
  let v = Gadget.run gadget ~proc ~rounds in
  Printf.printf "validity groups: zero=%b one=%b -> forced split=%b\n"
    v.Gadget.group_zero_ok v.Gadget.group_one_ok v.Gadget.split;
  let o = Gadget.replay_e2 gadget ~proc ~rounds in
  Printf.printf "replaying execution E2 on the original graph:\n";
  Array.iteri
    (fun u out ->
      match out with
      | Some b -> Printf.printf "  node %2d decides %s\n" u (Bit.to_string b)
      | None -> Printf.printf "  node %2d faulty (replaying)\n" u)
    o.Spec.outputs;
  Printf.printf "agreement: %b (with %d faults <= f=%d): the condition is \
                 necessary.\n"
    (Spec.agreement o)
    (Nodeset.cardinal (Gadget.e2_faulty gadget))
    f;
  if Spec.agreement o then 1 else 0

(* ------------------------------------------------------------------ *)
(* predict                                                              *)
(* ------------------------------------------------------------------ *)

let do_predict g f =
  let n = G.size g in
  Printf.printf "graph               : %d nodes, %d edges\n" n (G.num_edges g);
  (match Lbc_consensus.Solve.choose ~g ~f with
  | Ok choice ->
      Printf.printf "selected algorithm  : %s\n"
        (Format.asprintf "%a" Lbc_consensus.Solve.pp_choice choice)
  | Error v ->
      Printf.printf "infeasible for f=%d  : %s\n" f
        (Format.asprintf "%a" Cond.pp_verdict v));
  let phases = Lbc_graph.Combi.phase_count ~n ~f in
  let per_phase = Lbc_flood.Flood.predicted_transmissions g in
  Printf.printf "algorithm 1         : %d phases, %d rounds\n" phases
    (phases * n);
  Printf.printf "algorithm 2         : 3 phases, %d rounds (needs κ >= %d)\n"
    ((3 * n) + 1)
    (2 * f);
  Printf.printf "flood transmissions : %d per all-honest phase (n + Σ simple \
                 paths)\n"
    per_phase;
  Printf.printf "algorithm 1 total   : ~%d transmissions (all-honest bound)\n"
    (phases * per_phase);
  0

(* ------------------------------------------------------------------ *)
(* forensics                                                            *)
(* ------------------------------------------------------------------ *)

let do_forensics g f inputs faulty strategy seed =
  let n = G.size g in
  let inputs =
    match inputs with
    | Some a when Array.length a = n -> a
    | Some _ ->
        Printf.eprintf "inputs length must equal graph size %d\n" n;
        exit 2
    | None ->
        Array.init n (fun v ->
            if Nodeset.mem v faulty then Bit.One else Bit.Zero)
  in
  let o, reports =
    A2.run_detailed ~g ~f ~inputs ~faulty
      ~strategy:(fun _ -> strategy)
      ~seed ()
  in
  Printf.printf
    "Algorithm 2 fault forensics (f=%d, faulty=%s, strategy %s):\n" f
    (Nodeset.to_string faulty)
    (Format.asprintf "%a" S.pp_kind strategy);
  Array.iteri
    (fun v rep ->
      match rep with
      | None -> Printf.printf "node %2d : FAULTY\n" v
      | Some r ->
          Printf.printf "node %2d : decides %s  %-6s identified %s\n" v
            (Bit.to_string r.A2.decision)
            (if r.A2.type_a then "type A" else "type B")
            (Nodeset.to_string r.A2.detected))
    reports;
  Printf.printf "agreement: %b  validity: %b  (%d rounds)\n"
    (Spec.agreement o) (Spec.validity o) o.Spec.rounds;
  if Spec.consensus_ok o then 0 else 1

(* ------------------------------------------------------------------ *)
(* fuzz                                                                 *)
(* ------------------------------------------------------------------ *)

let do_fuzz g algo f t runs seed =
  let module Fuzz = Lbc_consensus.Fuzz in
  let target =
    match algo with
    | "a1" -> Fuzz.A1
    | "a2" -> Fuzz.A2
    | "a3" -> Fuzz.A3 t
    | "relay" -> Fuzz.Relay
    | other ->
        Printf.eprintf "unknown fuzz target %s (a1, a2, a3, relay)\n" other;
        exit 2
  in
  let r = Fuzz.run ~g ~f ~target ~runs ~seed () in
  Printf.printf "%s\n" (Format.asprintf "%a" Fuzz.pp_report r);
  if r.Fuzz.violations = [] then 0 else 1

(* ------------------------------------------------------------------ *)
(* campaign / report                                                    *)
(* ------------------------------------------------------------------ *)

module Campaign = Lbc_campaign

let custom_grid spec f algo =
  let build () =
    match parse_graph spec with
    | Ok g -> g
    | Error (`Msg m) ->
        Printf.eprintf "%s\n" m;
        exit 2
  in
  let algos =
    match algo with
    | "a1" -> [ Campaign.Scenario.A1 ]
    | "a2" -> [ Campaign.Scenario.A2 ]
    | "both" -> [ Campaign.Scenario.A1; Campaign.Scenario.A2 ]
    | other ->
        Printf.eprintf "unknown campaign algorithm %s (a1, a2, both)\n" other;
        exit 2
  in
  Campaign.Grid.product ~name:"custom"
    ~graphs:[ (spec, f, build) ]
    ~algos ~placements:Campaign.Grid.placements_up_to_f
    ~strategies:S.kinds_lbc ~inputs:Campaign.Grid.unanimous_inputs ()

let warn_recovery (r : Campaign.Journal.recovery) =
  if r.Campaign.Journal.dropped_bytes > 0 then
    Printf.eprintf
      "warning: journal recovery truncated %d corrupt byte%s%s (a torn \
       trailing record is expected after a crash; more suggests corruption)\n"
      r.Campaign.Journal.dropped_bytes
      (if r.Campaign.Journal.dropped_bytes = 1 then "" else "s")
      (match r.Campaign.Journal.first_corrupt with
      | Some n -> Printf.sprintf " at record %d" n
      | None -> "")

let do_campaign exp gspec algo f quick domains seed out max_scenarios chaos
    net max_rounds deadline retries strict no_steal cache no_cache
    kill_after =
  let grid =
    match (exp, gspec) with
    | Some name, _ -> (
        match Campaign.Grids.by_name ~quick name with
        | Some grid -> grid
        | None ->
            Printf.eprintf "unknown experiment %s (try %s)\n" name
              (String.concat ", " Campaign.Grids.names);
            exit 2)
    | None, Some spec -> custom_grid spec f algo
    | None, None ->
        Printf.eprintf "campaign needs --exp NAME or -g GRAPH\n";
        exit 2
  in
  let grid =
    match chaos with
    | None -> grid
    | Some spec -> Campaign.Grid.with_chaos spec grid
  in
  let grid =
    match net with
    | None -> grid
    | Some p -> Campaign.Grid.with_net p grid
  in
  let out =
    match out with
    | Some path -> path
    | None -> Printf.sprintf "campaign-%s.json" grid.Campaign.Grid.name
  in
  let config =
    {
      Campaign.Runner.domains;
      base_seed = seed;
      journal = Some (out ^ ".journal");
      cache = (if no_cache then None else cache);
      stop_after = max_scenarios;
      progress =
        Some
          (fun ~done_scenarios ~total ->
            Printf.eprintf "\r  scenario %d/%d%!" done_scenarios total);
      max_rounds;
      deadline_s = deadline;
      retries;
      strict;
      steal = not no_steal;
      kill_after_verdicts = Option.map (fun k -> (k, true)) kill_after;
    }
  in
  match Campaign.Runner.run ~config grid with
  | exception Campaign.Journal.Killed { appended } ->
      Printf.eprintf
        "\nsimulated crash: killed after %d journal append%s; resume with \
         the same command\n"
        appended
        (if appended = 1 then "" else "s");
      70
  | Campaign.Runner.Partial { completed; total; recovery } ->
      Printf.eprintf "\n";
      warn_recovery recovery;
      Printf.printf
        "campaign %s interrupted at %d/%d scenarios; progress saved to %s — \
         re-run the same command to resume\n"
        grid.Campaign.Grid.name completed total (out ^ ".journal");
      0
  | Campaign.Runner.Complete artifact ->
      Printf.eprintf "\n";
      let run = artifact.Campaign.Artifact.run in
      warn_recovery
        {
          Campaign.Journal.recovered =
            run.Campaign.Artifact.recovery.Campaign.Artifact.recovered_records;
          dropped_bytes =
            run.Campaign.Artifact.recovery.Campaign.Artifact.dropped_bytes;
          first_corrupt =
            run.Campaign.Artifact.recovery
              .Campaign.Artifact.first_corrupt_record;
          stale = false;
        };
      Campaign.Artifact.save ~path:out artifact;
      let s = Campaign.Artifact.summarize artifact in
      Printf.printf "campaign   : %s (%d scenarios)\n"
        artifact.Campaign.Artifact.campaign s.Campaign.Artifact.total;
      Printf.printf "domains    : %d  (resumed scenarios: %d, steals: %d)\n"
        domains run.Campaign.Artifact.resumed_scenarios
        run.Campaign.Artifact.steal.Campaign.Artifact.steals;
      (let c = run.Campaign.Artifact.cache in
       if
         c.Campaign.Artifact.hits + c.Campaign.Artifact.misses
         + c.Campaign.Artifact.stores
         > 0
       then
         Printf.printf "cache      : %d hits, %d misses, %d stored\n"
           c.Campaign.Artifact.hits c.Campaign.Artifact.misses
           c.Campaign.Artifact.stores);
      (let r = run.Campaign.Artifact.recovery in
       if r.Campaign.Artifact.recovered_records > 0 then
         Printf.printf "recovery   : %d journal records adopted%s\n"
           r.Campaign.Artifact.recovered_records
           (if r.Campaign.Artifact.dropped_bytes > 0 then
              Printf.sprintf ", %d torn bytes truncated"
                r.Campaign.Artifact.dropped_bytes
            else ""));
      Printf.printf "wall       : %.3f s\n" run.Campaign.Artifact.wall_s;
      Printf.printf "summary    : %s\n"
        (Format.asprintf "%a" Campaign.Artifact.pp_summary s);
      Printf.printf "artifact   : %s\n" out;
      List.iter
        (fun (q : Campaign.Artifact.quarantined) ->
          Printf.printf "quarantined: scenario %d (%s): %s\n"
            q.Campaign.Artifact.index q.Campaign.Artifact.id
            q.Campaign.Artifact.message)
        artifact.Campaign.Artifact.quarantined;
      let bad =
        s.Campaign.Artifact.violations + s.Campaign.Artifact.crashed
        + s.Campaign.Artifact.timeouts
        + s.Campaign.Artifact.quarantined
      in
      if bad > 0 then begin
        Printf.printf "failures:\n";
        let shown = ref 0 in
        Array.iter
          (fun (v : Campaign.Scenario.verdict) ->
            if (not v.Campaign.Scenario.ok) && !shown < 10 then begin
              incr shown;
              Printf.printf "  %s\n"
                (Format.asprintf "%a" Campaign.Scenario.pp_verdict v)
            end)
          artifact.Campaign.Artifact.verdicts;
        1
      end
      else 0

let do_report path fingerprint stats =
  match Campaign.Artifact.load ~path with
  | Error msg ->
      Printf.eprintf "%s: %s\n" path msg;
      2
  | Ok artifact ->
      if fingerprint then begin
        (* Digest of the deterministic portion (everything but timing):
           identical across domain counts and resume boundaries. *)
        print_endline
          (Digest.to_hex
             (Digest.string (Campaign.Artifact.deterministic_string artifact)));
        0
      end
      else begin
        let s = Campaign.Artifact.summarize artifact in
        let run = artifact.Campaign.Artifact.run in
        Printf.printf "campaign   : %s\n" artifact.Campaign.Artifact.campaign;
        Printf.printf "grid       : %d scenarios, seed %d, fingerprint %s\n"
          artifact.Campaign.Artifact.count
          artifact.Campaign.Artifact.base_seed
          artifact.Campaign.Artifact.grid_fingerprint;
        Printf.printf
          "run        : %d domains, %.3f s wall, %d resumed scenarios, %d \
           steals, %d retried\n"
          run.Campaign.Artifact.domains run.Campaign.Artifact.wall_s
          run.Campaign.Artifact.resumed_scenarios
          run.Campaign.Artifact.steal.Campaign.Artifact.steals
          run.Campaign.Artifact.steal.Campaign.Artifact.retried;
        (let c = run.Campaign.Artifact.cache in
         if
           c.Campaign.Artifact.hits + c.Campaign.Artifact.misses
           + c.Campaign.Artifact.stores
           > 0
         then
           Printf.printf "cache      : %d hits, %d misses, %d stored\n"
             c.Campaign.Artifact.hits c.Campaign.Artifact.misses
             c.Campaign.Artifact.stores);
        (let r = run.Campaign.Artifact.recovery in
         if
           r.Campaign.Artifact.recovered_records > 0
           || r.Campaign.Artifact.dropped_bytes > 0
         then
           Printf.printf
             "recovery   : %d journal records adopted, %d torn bytes \
              truncated%s\n"
             r.Campaign.Artifact.recovered_records
             r.Campaign.Artifact.dropped_bytes
             (match r.Campaign.Artifact.first_corrupt_record with
             | Some n -> Printf.sprintf " (first corrupt record %d)" n
             | None -> ""));
        Printf.printf "summary    : %s\n"
          (Format.asprintf "%a" Campaign.Artifact.pp_summary s);
        if stats then begin
          Printf.printf "stats      :\n";
          print_string
            (Format.asprintf "%a" Campaign.Stats.pp
               artifact.Campaign.Artifact.stats)
        end;
        (match Campaign.Artifact.sim_stats artifact with
        | [] -> ()
        | entries ->
            Printf.printf "sim time   : per scenario family (simulated, from \
                           the artifact's deterministic portion)\n";
            Printf.printf "  %-28s %9s %12s %12s %12s\n" "family" "scenarios"
              "p50 (s)" "p99 (s)" "max (s)";
            List.iter
              (fun (e : Campaign.Artifact.sim_entry) ->
                Printf.printf "  %-28s %9d %12.6f %12.6f %12.6f\n"
                  e.Campaign.Artifact.family e.Campaign.Artifact.scenarios
                  (Net.sim_time_s e.Campaign.Artifact.p50_ns)
                  (Net.sim_time_s e.Campaign.Artifact.p99_ns)
                  (Net.sim_time_s e.Campaign.Artifact.max_ns))
              entries);
        List.iter
          (fun (q : Campaign.Artifact.quarantined) ->
            Printf.printf "quarantined: scenario %d (%s): %s\n"
              q.Campaign.Artifact.index q.Campaign.Artifact.id
              q.Campaign.Artifact.message)
          artifact.Campaign.Artifact.quarantined;
        Array.iter
          (fun (v : Campaign.Scenario.verdict) ->
            if not v.Campaign.Scenario.ok then
              Printf.printf "  %s\n"
                (Format.asprintf "%a" Campaign.Scenario.pp_verdict v))
          artifact.Campaign.Artifact.verdicts;
        if
          s.Campaign.Artifact.violations + s.Campaign.Artifact.crashed
          + s.Campaign.Artifact.timeouts
          + s.Campaign.Artifact.quarantined
          > 0
        then 1
        else 0
      end

(* ------------------------------------------------------------------ *)
(* lint                                                                 *)
(* ------------------------------------------------------------------ *)

let do_lint roots baseline write_baseline update_baseline json deep sarif
    deep_cache =
  Lbc_lint.Driver.main
    {
      Lbc_lint.Driver.roots;
      baseline;
      write_baseline;
      update_baseline;
      json;
      deep;
      sarif;
      deep_cache;
    }

(* ------------------------------------------------------------------ *)
(* sweep                                                                *)
(* ------------------------------------------------------------------ *)

let do_sweep fmax =
  Printf.printf "required connectivity floor(3(f-t)/2) + 2t + 1:\n%-6s" "f\\t";
  for t = 0 to fmax do
    Printf.printf "%6d" t
  done;
  print_newline ();
  for f = 1 to fmax do
    Printf.printf "%-6d" f;
    for t = 0 to fmax do
      if t <= f then
        Printf.printf "%6d" (Cond.hybrid_required_connectivity ~f ~t)
      else Printf.printf "%6s" "-"
    done;
    print_newline ()
  done;
  0

(* ------------------------------------------------------------------ *)
(* Command definitions                                                  *)
(* ------------------------------------------------------------------ *)

open Cmdliner

let graph_arg =
  Arg.(
    required
    & opt (some graph_conv) None
    & info [ "g"; "graph" ] ~docv:"GRAPH" ~doc:"Graph specification.")

let f_arg =
  Arg.(value & opt int 1 & info [ "f" ] ~docv:"F" ~doc:"Fault budget.")

let t_arg =
  Arg.(
    value & opt int 0
    & info [ "t" ] ~docv:"T" ~doc:"Equivocation budget (hybrid model).")

let check_cmd =
  let doc = "Evaluate the feasibility conditions of all three models." in
  Cmd.v
    (Cmd.info "check" ~doc)
    Term.(const do_check $ graph_arg $ f_arg $ t_arg)

let gen_cmd =
  let dot =
    Arg.(value & flag & info [ "dot" ] ~doc:"Emit Graphviz instead of an edge list.")
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Emit a built-in graph.")
    Term.(const do_gen $ graph_arg $ dot)

let run_cmd =
  let algo =
    Arg.(
      value & opt string "a1"
      & info [ "algo"; "a" ] ~docv:"ALGO"
          ~doc:"Algorithm: a1, a2, a3, eig, relay.")
  in
  let inputs =
    Arg.(
      value
      & opt (some inputs_conv) None
      & info [ "inputs"; "i" ] ~docv:"BITS"
          ~doc:"Input assignment as a 01-string (default: faulty get 1).")
  in
  let faulty =
    Arg.(
      value
      & opt nodeset_conv Nodeset.empty
      & info [ "faulty" ] ~docv:"IDS" ~doc:"Comma-separated faulty node ids.")
  in
  let equivocators =
    Arg.(
      value
      & opt nodeset_conv Nodeset.empty
      & info [ "equivocators" ] ~docv:"IDS"
          ~doc:"Subset of the faulty nodes allowed to equivocate (a3).")
  in
  let strategy =
    Arg.(
      value
      & opt strategy_conv S.Flip_forwards
      & info [ "strategy"; "s" ] ~docv:"STRAT" ~doc:"Adversarial strategy.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  let chaos =
    Arg.(
      value
      & opt (some chaos_conv) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            "Environment perturbation around the run: a comma-separated \
             key=value list with keys drop, dup, delay, delay-p, crash, \
             crash-len (e.g. drop=0.1,delay=2,delay-p=0.25). Deterministic \
             given --seed; 'none' disables.")
  in
  let net =
    Arg.(
      value
      & opt (some net_conv) None
      & info [ "net" ] ~docv:"PROFILE"
          ~doc:
            (Printf.sprintf
               "Network latency profile (%s, or const:NS): every delivery is \
                assigned a sampled link latency and the run reports its \
                simulated wall-time alongside round counts. Deterministic \
                given --seed; composes with --chaos."
               (String.concat ", " Net.names)))
  in
  let max_rounds =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-rounds" ] ~docv:"N"
          ~doc:
            "Round budget: abort with exit code 4 once the engine has \
             executed N rounds (catches livelock under --chaos).")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print observability counters and histograms (flood store \
             sizes, packing search effort, fault-discovery evidence, \
             perturbation tallies, per-phase tallies) after the run.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write per-round trace events (transmissions/deliveries per \
             engine round) to FILE, one event per line.")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate a consensus algorithm under an adversary.")
    Term.(
      const do_run $ graph_arg $ algo $ f_arg $ t_arg $ inputs $ faulty
      $ equivocators $ strategy $ seed $ chaos $ net $ max_rounds $ stats
      $ trace)

let attack_cmd =
  let lemma =
    Arg.(
      value & opt string "connectivity"
      & info [ "lemma" ] ~docv:"LEMMA" ~doc:"degree or connectivity.")
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Execute a necessity gadget on a condition-violating graph.")
    Term.(const do_attack $ graph_arg $ lemma $ f_arg $ t_arg)

let predict_cmd =
  Cmd.v
    (Cmd.info "predict"
       ~doc:
         "Predict algorithm choice, round counts and message complexity \
          for a graph and fault budget.")
    Term.(const do_predict $ graph_arg $ f_arg)

let forensics_cmd =
  let inputs =
    Arg.(
      value
      & opt (some inputs_conv) None
      & info [ "inputs"; "i" ] ~docv:"BITS"
          ~doc:"Input assignment as a 01-string.")
  in
  let faulty =
    Arg.(
      value
      & opt nodeset_conv Nodeset.empty
      & info [ "faulty" ] ~docv:"IDS" ~doc:"Comma-separated faulty node ids.")
  in
  let strategy =
    Arg.(
      value
      & opt strategy_conv S.Flip_forwards
      & info [ "strategy"; "s" ] ~docv:"STRAT" ~doc:"Adversarial strategy.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Random seed.")
  in
  Cmd.v
    (Cmd.info "forensics"
       ~doc:
         "Run Algorithm 2 and show, per node, its type (A/B) and the \
          faulty nodes it identified.")
    Term.(
      const do_forensics $ graph_arg $ f_arg $ inputs $ faulty $ strategy
      $ seed)

let fuzz_cmd =
  let algo =
    Arg.(
      value & opt string "a2"
      & info [ "algo"; "a" ] ~docv:"ALGO" ~doc:"Fuzz target: a1, a2, a3, relay.")
  in
  let runs =
    Arg.(
      value & opt int 100 & info [ "runs" ] ~docv:"N" ~doc:"Number of cases.")
  in
  let seed =
    Arg.(value & opt int 0 & info [ "seed" ] ~docv:"N" ~doc:"Base seed.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Randomised falsification campaign: random inputs, fault \
          placements and strategies; exits non-zero on any \
          agreement/validity violation.")
    Term.(const do_fuzz $ graph_arg $ algo $ f_arg $ t_arg $ runs $ seed)

let sweep_cmd =
  let fmax =
    Arg.(value & opt int 6 & info [ "fmax" ] ~docv:"N" ~doc:"Largest f.")
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Print the hybrid equivocation trade-off table.")
    Term.(const do_sweep $ fmax)

let campaign_cmd =
  let exp =
    Arg.(
      value
      & opt (some string) None
      & info [ "exp"; "e" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Predefined experiment grid (%s)."
               (String.concat ", " Lbc_campaign.Grids.names)))
  in
  let gspec =
    Arg.(
      value
      & opt (some string) None
      & info [ "g"; "graph" ] ~docv:"GRAPH"
          ~doc:
            "Custom campaign: sweep this graph over all fault placements of \
             size <= F, every broadcast-bound strategy and both unanimous \
             input polarities.")
  in
  let algo =
    Arg.(
      value & opt string "both"
      & info [ "algo"; "a" ] ~docv:"ALGO"
          ~doc:"Custom-campaign algorithm: a1, a2 or both.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Reduced sweep axes.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains"; "j" ] ~docv:"N"
          ~doc:
            "Worker domains. The result artifact is byte-identical (modulo \
             its timing section) at any domain count.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Campaign base seed; folded with each scenario id into that \
             scenario's RNG seed, so randomised adversaries are \
             reproducible per scenario.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Artifact path (default campaign-NAME.json).")
  in
  let max_scenarios =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-scenarios" ] ~docv:"N"
          ~doc:
            "Stop after completing N new scenarios, leaving the journal for \
             a later resume.")
  in
  let chaos =
    Arg.(
      value
      & opt (some chaos_conv) None
      & info [ "chaos" ] ~docv:"SPEC"
          ~doc:
            "Install this environment perturbation (see $(b,run --chaos)) \
             on every scenario of the grid, overriding any per-scenario \
             spec. The determinism contract still holds: perturbation is \
             seeded per scenario.")
  in
  let net =
    Arg.(
      value
      & opt (some net_conv) None
      & info [ "net" ] ~docv:"PROFILE"
          ~doc:
            "Install this network latency profile (see $(b,run --net)) on \
             every scenario of the grid, overriding any per-scenario \
             profile. Verdicts then carry per-scenario simulated wall-time \
             and the artifact a per-family sim-time section — both in the \
             deterministic portion.")
  in
  let max_rounds =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-rounds" ] ~docv:"N"
          ~doc:
            "Per-scenario engine-round budget; an execution that exhausts \
             it gets a timeout verdict instead of hanging its worker \
             domain.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECONDS"
          ~doc:
            "Per-scenario wall-clock deadline: a watchdog converts an \
             execution exceeding it into a timeout verdict by cancelling \
             its round budget. Wall-clock dependent — fingerprints are \
             only reproducible when no deadline fires.")
  in
  let retries =
    Arg.(
      value & opt int 1
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Infrastructure-failure retries per scenario (with capped \
             exponential backoff) before quarantining it.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Fail fast: abort the whole campaign on the first crashed or \
             timed-out scenario instead of recording a verdict and \
             continuing.")
  in
  let no_steal =
    Arg.(
      value & flag
      & info [ "no-steal" ]
          ~doc:
            "Disable work-stealing: each worker keeps its static \
             contiguous block of scenarios (the straggler-sensitive \
             baseline the E17 study measures against).")
  in
  let cache =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Content-addressed result cache: scenarios whose (id, seed, \
             round budget) key is already present are not re-executed; new \
             verdicts are stored for future runs. Safe to share between \
             concurrent campaigns.")
  in
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Ignore $(b,--cache): execute every scenario afresh.")
  in
  let kill_after =
    Arg.(
      value
      & opt (some int) None
      & info [ "kill-after-verdicts" ] ~docv:"K"
          ~doc:
            "Crash injection (for the recovery test harness): abort with \
             exit 70 at the K-th journal append of this invocation, \
             leaving a torn half-record at the journal tail. Resuming must \
             reproduce the uninterrupted artifact byte-for-byte.")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:
         "Run an experiment campaign (a deterministic scenario grid) on a \
          work-stealing OCaml 5 domain pool, streaming every verdict to a \
          crash-survivable journal (automatic resume), and write a \
          versioned JSON results artifact.")
    Term.(
      const do_campaign $ exp $ gspec $ algo $ f_arg $ quick $ domains $ seed
      $ out $ max_scenarios $ chaos $ net $ max_rounds $ deadline $ retries
      $ strict $ no_steal $ cache $ no_cache $ kill_after)

let lint_cmd =
  let roots =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"PATH"
          ~doc:
            "Files or directories to lint (default: lib bin bench test \
             examples).")
  in
  let baseline =
    Arg.(
      value
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE"
          ~doc:
            "Baseline of grandfathered findings (D2/D4/D5 and the deep \
             rules).")
  in
  let write_baseline =
    Arg.(
      value & flag
      & info [ "write-baseline" ]
          ~doc:"Regenerate $(b,--baseline) from the current findings.")
  in
  let update_baseline =
    Arg.(
      value & flag
      & info [ "update-baseline" ]
          ~doc:
            "Shrink $(b,--baseline) to the current findings (drop stale \
             counts, never add entries).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit a machine-readable lbclint/3 JSON report.")
  in
  let deep =
    Arg.(
      value & flag
      & info [ "deep" ]
          ~doc:
            "Also run the whole-program typed-AST pass (E1 nondeterminism \
             taint, E2 cross-domain mutable state, E3 lockset data races, \
             E4 check-then-act atomicity, M1 local-broadcast model \
             invariant, advisory X1 dead exports); requires a prior \
             $(b,dune build).")
  in
  let sarif =
    Arg.(
      value
      & opt (some string) None
      & info [ "sarif" ] ~docv:"FILE"
          ~doc:"Also write the findings as SARIF 2.1.0 to $(docv).")
  in
  let deep_cache =
    Arg.(
      value
      & opt (some string) None
      & info [ "deep-cache" ] ~docv:"DIR"
          ~doc:
            "Incremental summary cache for the $(b,--deep) pass (warm runs \
             re-analyze only changed modules).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static determinism & domain-safety analysis (rules D1-D6, deep \
          rules E1/E2/E3/E4/M1/X1): no wall clocks, no unordered Hashtbl \
          traversal reaching output, no ambient Random state, no \
          polymorphic compare in lib/, no unguarded top-level mutable \
          state, no exception-swallowing catch-alls, no unsynchronized \
          cross-domain state, no per-receiver payloads outside the \
          adversary. Exits 0 clean / 1 findings / 2 config or parse \
          error.")
    Term.(
      const do_lint $ roots $ baseline $ write_baseline $ update_baseline
      $ json $ deep $ sarif $ deep_cache)

let report_cmd =
  let path =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ARTIFACT" ~doc:"Campaign artifact to inspect.")
  in
  let fingerprint =
    Arg.(
      value & flag
      & info [ "fingerprint" ]
          ~doc:
            "Print only the digest of the artifact's deterministic portion \
             (everything except the timing section).")
  in
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Also print the per-algorithm counter aggregates from the \
             artifact's deterministic stats section.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Parse a campaign artifact, print its summary and any violations; \
          exits non-zero when the artifact fails to parse or records \
          violations.")
    Term.(const do_report $ path $ fingerprint $ stats)

let () =
  let doc = "Byzantine consensus under the local broadcast model (PODC'19)." in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "lbcast" ~version:"1.0.0" ~doc)
          [
            check_cmd; gen_cmd; run_cmd; attack_cmd; forensics_cmd;
            predict_cmd; fuzz_cmd; sweep_cmd; campaign_cmd; report_cmd;
            lint_cmd;
          ]))
